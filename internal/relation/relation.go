// Package relation is a small in-memory relational engine: typed columns
// with SQL-style NULLs, selection predicates in the CNF shapes of §5.2.3
// (disjunctions of equalities on a categorical column, open range conditions
// on a numerical column, conjunctions across columns), and predicate
// evaluation to row-ID sets. It is the substrate of the baseball query
// discovery experiment.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a column type.
type Type int

const (
	// Int columns hold int64 values.
	Int Type = iota
	// String columns hold string values.
	String
)

// Column is a typed, optionally nullable column. NULLs never satisfy any
// predicate (SQL three-valued logic collapsed to false for selections).
type Column struct {
	Name string
	Type Type
	ints []int64
	strs []string
	null []bool // nil when the column has no NULLs
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.null != nil && c.null[i] }

// Int returns the int64 value of row i (undefined for NULLs and non-Int
// columns; callers check first).
func (c *Column) Int(i int) int64 { return c.ints[i] }

// Str returns the string value of row i.
func (c *Column) Str(i int) string { return c.strs[i] }

// Len returns the number of rows.
func (c *Column) Len() int {
	if c.Type == Int {
		return len(c.ints)
	}
	return len(c.strs)
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name   string
	cols   []*Column
	byName map[string]*Column
	rows   int
}

// NewTable returns an empty table.
func NewTable(name string) *Table {
	return &Table{Name: name, byName: make(map[string]*Column)}
}

// AddIntColumn appends an Int column. null may be nil (no NULLs) or have the
// same length as vals.
func (t *Table) AddIntColumn(name string, vals []int64, null []bool) error {
	if err := t.checkAdd(name, len(vals), null); err != nil {
		return err
	}
	c := &Column{Name: name, Type: Int, ints: vals, null: null}
	t.cols = append(t.cols, c)
	t.byName[name] = c
	t.rows = len(vals)
	return nil
}

// AddStringColumn appends a String column.
func (t *Table) AddStringColumn(name string, vals []string, null []bool) error {
	if err := t.checkAdd(name, len(vals), null); err != nil {
		return err
	}
	c := &Column{Name: name, Type: String, strs: vals, null: null}
	t.cols = append(t.cols, c)
	t.byName[name] = c
	t.rows = len(vals)
	return nil
}

func (t *Table) checkAdd(name string, n int, null []bool) error {
	if _, dup := t.byName[name]; dup {
		return fmt.Errorf("relation: duplicate column %q", name)
	}
	if len(t.cols) > 0 && n != t.rows {
		return fmt.Errorf("relation: column %q has %d rows, table has %d", name, n, t.rows)
	}
	if null != nil && len(null) != n {
		return fmt.Errorf("relation: column %q null mask has %d entries for %d rows", name, len(null), n)
	}
	return nil
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column { return t.byName[name] }

// Columns returns all columns in insertion order.
func (t *Table) Columns() []*Column { return t.cols }

// Predicate is a selection condition evaluated per row.
type Predicate interface {
	// Eval reports whether row i of table t satisfies the predicate.
	Eval(t *Table, row int) bool
	// String renders the predicate in the paper's σ-subscript style.
	String() string
}

// EqAnyStr matches rows whose string column equals any of the values — the
// §5.2.3 categorical condition (a disjunction of equalities on one column).
type EqAnyStr struct {
	Col    string
	Values []string
}

// Eval implements Predicate.
func (p EqAnyStr) Eval(t *Table, row int) bool {
	c := t.Column(p.Col)
	if c == nil || c.Type != String || c.IsNull(row) {
		return false
	}
	v := c.Str(row)
	for _, w := range p.Values {
		if v == w {
			return true
		}
	}
	return false
}

// String implements Predicate.
func (p EqAnyStr) String() string {
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		parts[i] = fmt.Sprintf("%s=%q", p.Col, v)
	}
	return strings.Join(parts, "∨")
}

// EqAnyInt matches rows whose int column equals any of the values (the
// paper treats birthMonth and birthDay as categorical).
type EqAnyInt struct {
	Col    string
	Values []int64
}

// Eval implements Predicate.
func (p EqAnyInt) Eval(t *Table, row int) bool {
	c := t.Column(p.Col)
	if c == nil || c.Type != Int || c.IsNull(row) {
		return false
	}
	v := c.Int(row)
	for _, w := range p.Values {
		if v == w {
			return true
		}
	}
	return false
}

// String implements Predicate.
func (p EqAnyInt) String() string {
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		parts[i] = fmt.Sprintf("%s=%d", p.Col, v)
	}
	return strings.Join(parts, "∨")
}

// IntRange matches rows with col > Lo (when HasLo) and col < Hi (when
// HasHi) — the strict open intervals of §5.2.3's numerical conditions.
type IntRange struct {
	Col    string
	Lo, Hi int64
	HasLo  bool
	HasHi  bool
}

// Eval implements Predicate.
func (p IntRange) Eval(t *Table, row int) bool {
	c := t.Column(p.Col)
	if c == nil || c.Type != Int || c.IsNull(row) {
		return false
	}
	v := c.Int(row)
	if p.HasLo && v <= p.Lo {
		return false
	}
	if p.HasHi && v >= p.Hi {
		return false
	}
	return p.HasLo || p.HasHi
}

// String implements Predicate.
func (p IntRange) String() string {
	switch {
	case p.HasLo && p.HasHi:
		return fmt.Sprintf("%s>%d∧%s<%d", p.Col, p.Lo, p.Col, p.Hi)
	case p.HasLo:
		return fmt.Sprintf("%s>%d", p.Col, p.Lo)
	case p.HasHi:
		return fmt.Sprintf("%s<%d", p.Col, p.Hi)
	default:
		return "false"
	}
}

// And is the conjunction of predicates.
type And []Predicate

// Eval implements Predicate.
func (p And) Eval(t *Table, row int) bool {
	for _, q := range p {
		if !q.Eval(t, row) {
			return false
		}
	}
	return true
}

// String implements Predicate.
func (p And) String() string {
	parts := make([]string, len(p))
	for i, q := range p {
		s := q.String()
		if strings.Contains(s, "∨") {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, "∧")
}

// Query is a named selection over a table.
type Query struct {
	Name string
	Pred Predicate
}

// String renders the query like the paper's σ_pred(Table).
func (q Query) String() string { return "σ_" + q.Pred.String() }

// Select returns the sorted row IDs of t satisfying p.
func Select(t *Table, p Predicate) []uint32 {
	var out []uint32
	for i := 0; i < t.rows; i++ {
		if p.Eval(t, i) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// Eval runs the query against t.
func (q Query) Eval(t *Table) []uint32 { return Select(t, q.Pred) }

// DistinctStrings returns the sorted distinct non-NULL values of a string
// column (used to build candidate conditions).
func DistinctStrings(t *Table, col string, rows []uint32) []string {
	c := t.Column(col)
	if c == nil || c.Type != String {
		return nil
	}
	seen := make(map[string]bool)
	for _, r := range rows {
		if !c.IsNull(int(r)) {
			seen[c.Str(int(r))] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DistinctInts returns the sorted distinct non-NULL values of an int column
// over the given rows. ok is false when any row is NULL (the paper's
// candidate construction skips columns with missing example values).
func DistinctInts(t *Table, col string, rows []uint32) (vals []int64, ok bool) {
	c := t.Column(col)
	if c == nil || c.Type != Int {
		return nil, false
	}
	seen := make(map[int64]bool)
	for _, r := range rows {
		if c.IsNull(int(r)) {
			return nil, false
		}
		seen[c.Int(int(r))] = true
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}
