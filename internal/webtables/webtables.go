// Package webtables simulates the §5.2.1 web-tables workload: a corpus of
// entity sets extracted from web-table columns, and the 2-entity seed
// queries whose superset sub-collections drive the quality, pruning and
// timing experiments.
//
// The original corpus (a 2014 Wikipedia snapshot: 1.4M column sets, 6.3M
// distinct entities) is not redistributable, so Generate draws a
// domain-clustered synthetic corpus instead: Zipf-sized semantic domains
// ("NBA players", "cities", ...), each set sampling most of its members
// from one domain — popular members more often — plus cross-domain noise.
// This reproduces the two properties the algorithms actually see: seed
// pairs select overlapping sub-collections of widely varying size, and
// entity frequencies inside a sub-collection are long-tailed.
package webtables

import (
	"fmt"
	"sort"

	"setdiscovery/internal/dataset"
	"setdiscovery/internal/rng"
	"setdiscovery/internal/setops"
)

// Params configures the corpus generator.
type Params struct {
	NumSets    int // corpus size (paper: 1,407,178)
	NumDomains int // semantic domains
	// Domain pool sizes are Zipf distributed over [DomainMin, DomainMax].
	DomainMin, DomainMax int
	// Set sizes are uniform over [SetMin, SetMax] (paper removes sets with
	// fewer than 3 distinct elements, so SetMin ≥ 3).
	SetMin, SetMax int
	// NoiseRate is the fraction of a set's members drawn from foreign
	// domains (web-table columns are noisy, §5.2.1).
	NoiseRate float64
	Seed      uint64
}

// DefaultParams returns a laptop-sized corpus that preserves the paper's
// sub-collection shape: seed queries select between 100 and a few thousand
// candidate sets.
func DefaultParams() Params {
	return Params{
		NumSets:    40000,
		NumDomains: 120,
		DomainMin:  40,
		DomainMax:  4000,
		SetMin:     3,
		SetMax:     120,
		NoiseRate:  0.05,
		Seed:       0x77EB,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.NumSets < 1:
		return fmt.Errorf("webtables: NumSets = %d", p.NumSets)
	case p.NumDomains < 1:
		return fmt.Errorf("webtables: NumDomains = %d", p.NumDomains)
	case p.DomainMin < 1 || p.DomainMax < p.DomainMin:
		return fmt.Errorf("webtables: bad domain size range [%d, %d]", p.DomainMin, p.DomainMax)
	case p.SetMin < 3 || p.SetMax < p.SetMin:
		return fmt.Errorf("webtables: bad set size range [%d, %d] (paper keeps sets of ≥3)", p.SetMin, p.SetMax)
	case p.NoiseRate < 0 || p.NoiseRate >= 1:
		return fmt.Errorf("webtables: NoiseRate = %f", p.NoiseRate)
	}
	return nil
}

// Generate draws the corpus. Duplicate sets are dropped, mirroring the
// paper's cleaning, so the result may hold slightly fewer than NumSets sets.
func Generate(p Params) (*dataset.Collection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(p.Seed)

	// Carve the entity universe into domain pools with Zipf-ish sizes.
	domainOf := make([][]dataset.Entity, p.NumDomains)
	next := uint32(0)
	sizeZipf := rng.NewZipf(r.Split(), p.DomainMax-p.DomainMin+1, 1.05)
	for d := range domainOf {
		size := p.DomainMin + sizeZipf.Draw()
		pool := make([]dataset.Entity, size)
		for i := range pool {
			pool[i] = next
			next++
		}
		domainOf[d] = pool
	}
	numEntities := int(next)

	// Popularity skew: within a domain, members are drawn Zipf-weighted so
	// that a domain's "head" entities co-occur across many sets — those are
	// the natural 2-entity seed queries.
	domainPick := rng.NewZipf(r.Split(), p.NumDomains, 0.9)

	names := make([]string, 0, p.NumSets)
	elems := make([][]dataset.Entity, 0, p.NumSets)
	for i := 0; i < p.NumSets; i++ {
		d := domainPick.Draw()
		pool := domainOf[d]
		size := r.IntRange(p.SetMin, p.SetMax)
		if size > len(pool) {
			size = len(pool)
		}
		noise := int(p.NoiseRate * float64(size))
		own := size - noise
		set := make([]dataset.Entity, 0, size)
		// Zipf-weighted sample without replacement from the domain pool:
		// draw with replacement and dedup, then top up uniformly.
		zipf := rng.NewZipf(r.Split(), len(pool), 0.8)
		seen := make(map[dataset.Entity]bool, own)
		for tries := 0; len(set) < own && tries < 6*own; tries++ {
			e := pool[zipf.Draw()]
			if !seen[e] {
				seen[e] = true
				set = append(set, e)
			}
		}
		for len(set) < own {
			e := pool[r.Intn(len(pool))]
			if !seen[e] {
				seen[e] = true
				set = append(set, e)
			}
		}
		for len(set) < size {
			e := dataset.Entity(r.Intn(numEntities))
			if !seen[e] {
				seen[e] = true
				set = append(set, e)
			}
		}
		names = append(names, fmt.Sprintf("tbl%06d-col%d", i, d))
		elems = append(elems, set)
	}
	return dataset.FromIDSets(names, elems, numEntities, true)
}

// SeedQuery is a 2-entity initial example set and the size of the
// sub-collection it selects.
type SeedQuery struct {
	A, B dataset.Entity
	Size int // number of sets containing both entities
}

// SeedQueries finds up to maxQueries entity pairs co-occurring in at least
// minSets sets (the paper keeps sub-collections of ≥100 sets). Pairs are
// mined from the posting lists of frequent entities, deterministically.
func SeedQueries(c *dataset.Collection, minSets, maxQueries int, seed uint64) []SeedQuery {
	r := rng.New(seed)
	// Frequent entities only: a pair can only reach minSets co-occurrences
	// if both entities appear in ≥ minSets sets.
	var frequent []dataset.Entity
	for e := 0; e < c.NumEntities(); e++ {
		if len(c.Postings(dataset.Entity(e))) >= minSets {
			frequent = append(frequent, dataset.Entity(e))
		}
	}
	sort.Slice(frequent, func(i, j int) bool {
		return len(c.Postings(frequent[i])) > len(c.Postings(frequent[j]))
	})
	if len(frequent) > 4000 {
		frequent = frequent[:4000]
	}
	// Mine a surplus of qualifying pairs, then pick a stratified spread of
	// sub-collection sizes: the paper's 14,491 sub-collections range from
	// 100 to 11,219 sets but average 390, so small sub-collections must
	// dominate while a few large ones remain.
	seen := make(map[[2]dataset.Entity]bool)
	var mined []SeedQuery
	// Pairs are intersected into one buffer reused across the whole mining
	// pass. Versus counting, this materialises the co-occurring set list
	// (cheap: only matches are written), and IntersectInto's galloping
	// dispatch makes the frequent head×tail pairs sublinear in the longer
	// posting list, which a linear merge count never was.
	cobuf := make([]uint32, 0, 1024)
	record := func(a, b dataset.Entity) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		key := [2]dataset.Entity{a, b}
		if seen[key] {
			return
		}
		seen[key] = true
		cobuf = setops.IntersectInto(cobuf[:0], c.Postings(a), c.Postings(b))
		if n := len(cobuf); n >= minSets {
			mined = append(mined, SeedQuery{A: a, B: b, Size: n})
		}
	}
	// Systematic pass over the most frequent head. The full grid is mined
	// (not cut at a budget) because the head×head pairs with the largest
	// co-occurrence come first and would otherwise crowd out the small
	// sub-collections the stratified pick needs.
	head := len(frequent)
	if head > 160 {
		head = 160
	}
	for i := 0; i < head; i++ {
		for j := i + 1; j < head; j++ {
			record(frequent[i], frequent[j])
		}
	}
	// Randomised probing over the full frequent list picks up tail pairs;
	// deterministic via r.
	for probe := 0; probe < 200*maxQueries && len(frequent) >= 2; probe++ {
		record(frequent[r.Intn(len(frequent))], frequent[r.Intn(len(frequent))])
	}
	sort.Slice(mined, func(i, j int) bool {
		if mined[i].Size != mined[j].Size {
			return mined[i].Size < mined[j].Size
		}
		if mined[i].A != mined[j].A {
			return mined[i].A < mined[j].A
		}
		return mined[i].B < mined[j].B
	})
	if len(mined) <= maxQueries {
		return mined
	}
	// Stratified pick, biased towards the small end (quadratic ramp):
	// index i of the output takes the mined pair at rank (i/m)^2 · len.
	out := make([]SeedQuery, 0, maxQueries)
	prev := -1
	for i := 0; i < maxQueries; i++ {
		f := float64(i) / float64(maxQueries-1)
		idx := int(f * f * float64(len(mined)-1))
		if idx == prev {
			idx = prev + 1
		}
		if idx >= len(mined) {
			break
		}
		out = append(out, mined[idx])
		prev = idx
	}
	return out
}
