package webtables

import (
	"testing"

	"setdiscovery/internal/dataset"
	"setdiscovery/internal/setops"
)

// smallParams keeps unit tests fast while preserving the corpus shape.
func smallParams() Params {
	return Params{
		NumSets:    3000,
		NumDomains: 30,
		DomainMin:  20,
		DomainMax:  400,
		SetMin:     3,
		SetMax:     40,
		NoiseRate:  0.05,
		Seed:       11,
	}
}

var smallCorpus = func() *dataset.Collection {
	c, err := Generate(smallParams())
	if err != nil {
		panic(err)
	}
	return c
}()

func TestGenerateShape(t *testing.T) {
	c := smallCorpus
	if c.Len() < 2500 {
		t.Fatalf("corpus lost too many duplicates: %d sets", c.Len())
	}
	st := c.Stats()
	if st.MinSize < 3 {
		t.Errorf("set of size %d survived (paper removes <3)", st.MinSize)
	}
	if st.MaxSize > 40 {
		t.Errorf("set of size %d exceeds SetMax", st.MaxSize)
	}
	if st.DistinctEntities < 1000 {
		t.Errorf("only %d distinct entities", st.DistinctEntities)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != smallCorpus.Len() {
		t.Fatal("same seed, different corpus size")
	}
	for i := 0; i < a.Len(); i += 97 {
		if !setops.Equal(a.Set(i).Elems, smallCorpus.Set(i).Elems) {
			t.Fatalf("set %d differs between same-seed runs", i)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := smallParams()
	bad.SetMin = 2 // paper keeps only sets with ≥3 distinct elements
	if _, err := Generate(bad); err == nil {
		t.Error("SetMin=2 accepted")
	}
	bad = smallParams()
	bad.NoiseRate = 1.0
	if _, err := Generate(bad); err == nil {
		t.Error("NoiseRate=1 accepted")
	}
	bad = smallParams()
	bad.NumDomains = 0
	if _, err := Generate(bad); err == nil {
		t.Error("NumDomains=0 accepted")
	}
}

func TestSeedQueriesSelectLargeSubcollections(t *testing.T) {
	c := smallCorpus
	const minSets = 30
	seeds := SeedQueries(c, minSets, 25, 5)
	if len(seeds) == 0 {
		t.Fatal("no seed queries found; corpus lacks co-occurring head entities")
	}
	for _, s := range seeds {
		sub := c.SupersetsOf([]dataset.Entity{s.A, s.B})
		if sub.Size() != s.Size {
			t.Errorf("seed (%d,%d): reported %d sets, actual %d", s.A, s.B, s.Size, sub.Size())
		}
		if sub.Size() < minSets {
			t.Errorf("seed (%d,%d) selects only %d sets", s.A, s.B, sub.Size())
		}
	}
}

func TestSeedQueriesDeterministic(t *testing.T) {
	a := SeedQueries(smallCorpus, 30, 10, 5)
	b := SeedQueries(smallCorpus, 30, 10, 5)
	if len(a) != len(b) {
		t.Fatal("seed mining not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSubcollectionsOverlapHeavily(t *testing.T) {
	// The whole point of the workload: within a seed sub-collection the
	// member sets overlap a lot (same domain), so each question can
	// eliminate many sets. Verify that informative entities exist that
	// split off a sizable fraction.
	seeds := SeedQueries(smallCorpus, 30, 5, 5)
	if len(seeds) == 0 {
		t.Skip("no seeds in small corpus")
	}
	sub := smallCorpus.SupersetsOf([]dataset.Entity{seeds[0].A, seeds[0].B})
	infos := sub.InformativeEntities()
	if len(infos) == 0 {
		t.Fatal("no informative entities in seed sub-collection")
	}
	bestEven := sub.Size()
	for _, ec := range infos {
		if d := abs(2*ec.Count - sub.Size()); d < bestEven {
			bestEven = d
		}
	}
	// Some entity should split within 80% of perfectly even.
	if bestEven > sub.Size()*4/5 {
		t.Errorf("most even split deviation %d of %d: sub-collection barely overlaps",
			bestEven, sub.Size())
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
