// Package lint implements the setdisclint analyzers: project-specific
// static checks that prove, at compile time, the disciplines this codebase
// otherwise enforces by review and runtime leak counters.
//
// The analyzers:
//
//   - poolcheck: every pooled dataset.Subset obtained from a Scratch
//     partition source reaches Release on all paths out of the acquiring
//     function, or is explicitly Unpooled/Retained/returned; stores that
//     transfer ownership must carry a "// lint:owns" marker.
//   - decoderbounds: in untrusted codecs, allocation sizes and loop bounds
//     derived from decoded input must be dominated by a bound check.
//   - errcmp: errors are classified with errors.Is/As, never by message
//     substring or by == against a freshly built error.
//
// The package is deliberately dependency-free: it implements the small
// slice of the golang.org/x/tools/go/analysis surface the three analyzers
// need (Analyzer, Pass, Diagnostic) on top of go/ast and go/types, so the
// tool builds with the standard library alone. cmd/setdisclint wraps the
// analyzers in a driver speaking the `go vet -vettool` protocol.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks could migrate to
// the real framework without rewrites if the dependency ever lands.
type Analyzer struct {
	// Name is the analyzer identifier used in vet flags (-poolcheck)
	// and JSON output keys. Must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run performs the check over one package and reports findings
	// through pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver owns ordering and output
	// formatting.
	Report func(Diagnostic)

	markers markerIndex
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{PoolCheck, DecoderBounds, ErrCmp}
}

// InTestFile reports whether pos lies in a _test.go file. The disciplines
// are production-code rules: tests legitimately compare errors directly and
// build subsets they never release.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Marker annotations. A marker comment anywhere on a line — trailing or on
// the line immediately above a statement — opts that line out of one rule:
//
//	s.cs = s.sched.apply(s, old, e, a) // lint:owns — session owns cs
//
// Recognised markers: "lint:owns" (poolcheck: this store is a deliberate
// ownership transfer) and "lint:bounded" (decoderbounds: this size is
// bounded by construction).
type markerIndex map[markerKey]bool

type markerKey struct {
	file   string
	line   int
	marker string
}

func (p *Pass) buildMarkers() {
	if p.markers != nil {
		return
	}
	p.markers = markerIndex{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range []string{"lint:owns", "lint:bounded"} {
					if !strings.Contains(c.Text, m) {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					// The marker covers its own line and the
					// following one, so it works both as a
					// trailing comment and as a lead-in line.
					p.markers[markerKey{pos.Filename, pos.Line, m}] = true
					p.markers[markerKey{pos.Filename, pos.Line + 1, m}] = true
				}
			}
		}
	}
}

// HasMarker reports whether the line containing pos carries the given
// marker comment (on the same line or the line above).
func (p *Pass) HasMarker(pos token.Pos, marker string) bool {
	p.buildMarkers()
	where := p.Fset.Position(pos)
	return p.markers[markerKey{where.Filename, where.Line, marker}]
}

// funcName renders a function or method name for diagnostics.
func funcName(decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + decl.Name.Name
		}
		if idx, ok := t.(*ast.IndexExpr); ok {
			if id, ok := idx.X.(*ast.Ident); ok {
				return id.Name + "." + decl.Name.Name
			}
		}
	}
	return decl.Name.Name
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: binary.Uvarint(...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isConversion reports whether call is a type conversion, not a function
// call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin a call invokes ("make",
// "append", "len", ...) or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
