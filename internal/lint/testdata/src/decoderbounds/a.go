// Package decoderbounds holds the decoderbounds fixtures: the PR 5
// fuzz-found class where a decoded count sizes an allocation or bounds a
// loop before anything compares it to the remaining input.
package decoderbounds

import "encoding/binary"

// --- allocation sites ---------------------------------------------------

func decodeUnbounded(data []byte) []uint64 {
	n, _ := binary.Uvarint(data)
	return make([]uint64, n) // want `allocation size derives from decoded input`
}

func decodeBounded(data []byte) ([]uint64, bool) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, false
	}
	data = data[k:]
	if n > uint64(len(data)/8) {
		return nil, false
	}
	out := make([]uint64, 0, n)
	for len(data) >= 8 {
		out = append(out, binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	return out, true
}

func mapAlloc(data []byte) map[uint64]bool {
	n, _ := binary.Uvarint(data)
	return make(map[uint64]bool, n) // want `allocation size derives from decoded input`
}

func markedBounded(data []byte) []uint64 {
	n, _ := binary.Uvarint(data)
	return make([]uint64, n) // lint:bounded — caller feeds trusted fixture bytes only
}

// taint is per copy: bounding a copy does not bless the original.
func copyTaintLeak(data []byte) ([]byte, []byte) {
	n, _ := binary.Uvarint(data)
	capN := n
	if capN > 64 {
		capN = 64
	}
	a := make([]byte, capN)
	b := make([]byte, n) // want `allocation size derives from decoded input`
	return a, b
}

func clamped(data []byte) []byte {
	n, _ := binary.Uvarint(data)
	return make([]byte, min(n, 64)) // min() is a bound by construction
}

// --- loop bounds --------------------------------------------------------

func accumulate(data []byte) uint64 {
	n, _ := binary.Uvarint(data)
	var sum uint64
	for i := uint64(0); i < n; i++ { // want `loop bound derives from decoded input`
		sum += i
	}
	return sum
}

// A read-per-iteration loop fails fast on truncated input; the decoded
// bound is harmless.
func readPerIteration(data []byte) ([]uint16, bool) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, false
	}
	data = data[k:]
	var out []uint16
	for i := uint64(0); i < n; i++ {
		if len(data) < 2 {
			return nil, false
		}
		out = append(out, binary.LittleEndian.Uint16(data))
		data = data[2:]
	}
	return out, true
}

// --- taint through same-package helpers ---------------------------------

type reader struct{ data []byte }

// uvarint returns the raw decoded value: still tainted.
func (r *reader) uvarint() uint64 {
	v, k := binary.Uvarint(r.data)
	if k <= 0 {
		return 0
	}
	r.data = r.data[k:]
	return v
}

// count bounds the value against the remaining input: clean.
func (r *reader) count() (int, bool) {
	v := r.uvarint()
	if v > uint64(len(r.data)) {
		return 0, false
	}
	return int(v), true
}

func viaHelper(r *reader) []uint32 {
	n := r.uvarint()
	return make([]uint32, n) // want `allocation size derives from decoded input`
}

func viaCount(r *reader) []uint32 {
	n, ok := r.count()
	if !ok {
		return nil
	}
	return make([]uint32, n)
}
