// Package errcmp holds the errcmp fixtures: error classification must go
// through errors.Is/As, not message substrings or ad-hoc ==.
package errcmp

import (
	"errors"
	"io"
	"strings"
)

var ErrBoom = errors.New("boom")

// --- substring matching -------------------------------------------------

func substring(err error) bool {
	return strings.Contains(err.Error(), "boom") // want `message substring`
}

func prefix(err error) bool {
	return strings.HasPrefix(err.Error(), "router:") // want `message substring`
}

// Matching over ordinary strings is fine.
func plainStrings(s string) bool {
	return strings.Contains(s, "boom")
}

// --- equality -----------------------------------------------------------

func adhocEq(err error) bool {
	return err == errors.New("boom") // want `non-sentinel`
}

func localPair(e1, e2 error) bool {
	return e1 == e2 // want `non-sentinel`
}

func sentinelEq(err error) bool {
	return err == ErrBoom
}

func ioSentinel(err error) bool {
	return err != io.EOF
}

func nilCheck(err error) bool {
	return err == nil
}

type state struct{ err error }

// A field under classification against a bare sentinel stays legal: the
// snapshot codec distinguishes the unwrapped value on purpose.
func fieldVsSentinel(s *state) bool {
	return s.err != ErrBoom
}

func viaIs(err error) bool {
	return errors.Is(err, ErrBoom)
}

// --- switch -------------------------------------------------------------

func switchClassify(err error) int {
	switch err {
	case nil, ErrBoom, io.EOF:
		return 0
	case errors.New("transient"): // want `non-sentinel case`
		return 1
	}
	return 2
}
