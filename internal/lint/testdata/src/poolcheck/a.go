// Package poolcheck holds the poolcheck analyzer fixtures. The three
// "historical" functions re-encode, shape for shape, the pooled-subset
// leaks PRs 3, 4, and 6 fixed by hand: a contradiction path returning
// before Release, a backtracking trail absorbing subsets without declared
// ownership, and an abandoned batch round leaving partition halves parked.
package poolcheck

import (
	"setdiscovery/internal/dataset"
)

// --- historical leak shape 1: contradiction path ------------------------
// An empty partition half means the answers contradict every candidate;
// the early error return used to drop both pooled halves.

func contradictionPath(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) *dataset.Subset {
	with, without := cs.PartitionScratch(e, sc) // want `with acquired here is not released` `without acquired here is not released`
	if with.Size() == 0 {
		return nil
	}
	without.Release()
	return with
}

func contradictionPathFixed(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) *dataset.Subset {
	with, without := cs.PartitionScratch(e, sc)
	if with.Size() == 0 {
		with.Release()
		without.Release()
		return nil
	}
	without.Release()
	return with
}

// --- historical leak shape 2: backtracking trail drop -------------------
// Superseded candidate sets go onto the trail for §6 backtracking; the
// store transfers ownership to the trail and must say so.

type trailEntry struct {
	before *dataset.Subset
	entity dataset.Entity
}

func trailDrop(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch, trail []trailEntry) []trailEntry {
	before, after := cs.PartitionScratch(e, sc)
	after.Release()
	trail = append(trail, trailEntry{before: before, entity: e}) // want `before placed in a composite literal`
	return trail
}

func trailKeep(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch, trail []trailEntry) []trailEntry {
	before, after := cs.PartitionScratch(e, sc)
	after.Release()
	// lint:owns — the trail owns superseded subsets until the session ends.
	trail = append(trail, trailEntry{before: before, entity: e})
	return trail
}

// --- historical leak shape 3: abandoned batch round ---------------------
// A member skipped mid-round used to leave its partition halves parked
// forever; every loop iteration must discharge what it acquired.

func abandonedBatch(css []*dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	for i, cs := range css {
		with, without := cs.PartitionScratch(e, sc) // want `with acquired here is not released` `without acquired here is not released`
		if i%2 == 0 {
			continue
		}
		with.Release()
		without.Release()
	}
}

func batchRoundFixed(css []*dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	for i, cs := range css {
		with, without := cs.PartitionScratch(e, sc)
		if i%2 == 0 {
			with.Release()
			without.Release()
			continue
		}
		with.Release()
		without.Release()
	}
}

// --- double release and use after release -------------------------------

func doubleRelease(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	with, without := cs.PartitionScratch(e, sc)
	with.Release()
	without.Release()
	with.Release() // want `second Release of with`
}

func useAfterRelease(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) int {
	with, without := cs.PartitionScratch(e, sc)
	without.Release()
	with.Release()
	return with.Size() // want `with used after Release`
}

func overwriteWhileOwned(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	with, without := cs.PartitionScratch(e, sc) // want `with acquired here is overwritten before Release`
	without.Release()
	with = nil
	_ = with
}

// --- escapes ------------------------------------------------------------

type holder struct{ s *Subsetish }

// Subsetish aliases the pooled type through a named field struct so the
// fixtures exercise selector stores.
type Subsetish = dataset.Subset

func fieldStore(h *holder, cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	with, without := cs.PartitionScratch(e, sc)
	without.Release()
	h.s = with // want `with stored without`
}

func fieldStoreOwned(h *holder, cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	with, without := cs.PartitionScratch(e, sc)
	without.Release()
	h.s = with // lint:owns — holder releases it on Close
}

func directFieldStore(h *holder, cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	h.s, _ = cs.PartitionScratch(e, sc) // want `stored without` `assigned to _`
}

func sendHalf(ch chan *dataset.Subset, cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	with, without := cs.PartitionScratch(e, sc)
	without.Release()
	ch <- with // want `with sent to a channel`
}

func unpoolEscape(h *holder, cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	with, without := cs.PartitionScratch(e, sc)
	without.Release()
	with.Unpool()
	h.s = with // no marker needed: unpooled values are unmanaged
}

// --- clean patterns the analyzer must not flag --------------------------

func releaseAllPaths(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) int {
	with, without := cs.PartitionScratch(e, sc)
	var n int
	if with.Size() > without.Size() {
		n = with.Size()
	} else {
		n = without.Size()
	}
	with.Release()
	without.Release()
	return n
}

func borrowHelper(s *dataset.Subset) int { return s.Size() }

func borrowThenRelease(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) int {
	with, without := cs.PartitionScratch(e, sc)
	n := borrowHelper(with) + borrowHelper(without)
	with.Release()
	without.Release()
	return n
}

func deferRelease(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) int {
	with, without := cs.PartitionScratch(e, sc)
	defer with.Release()
	defer without.Release()
	return with.Size() + without.Size()
}

// forkJoin mirrors tree.build: a goroutine borrows one half, the parent
// joins before releasing both.
func forkJoin(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	with, without := cs.PartitionScratch(e, sc)
	done := make(chan struct{})
	go func() {
		borrowHelper(with)
		close(done)
	}()
	borrowHelper(without)
	<-done
	with.Release()
	without.Release()
}

// --- interprocedural summaries ------------------------------------------

// pickHalf is owner-returning: its caller must release the result.
func pickHalf(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch, yes bool) *dataset.Subset {
	with, without := cs.PartitionScratch(e, sc)
	if yes {
		without.Release()
		return with
	}
	with.Release()
	return without
}

func callerOwns(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	h := pickHalf(cs, e, sc, true)
	h.Release()
}

func callerLeaks(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) int {
	h := pickHalf(cs, e, sc, false) // want `h acquired here is not released`
	return h.Size()
}

// consumeHalf takes ownership of its argument.
func consumeHalf(s *dataset.Subset) { s.Release() }

func handoff(cs *dataset.Subset, e dataset.Entity, sc *dataset.Scratch) {
	with, without := cs.PartitionScratch(e, sc)
	consumeHalf(with)
	consumeHalf(without)
}
