// Package dataset is a minimal stand-in for the real
// setdiscovery/internal/dataset, just large enough to type-check the
// analyzer fixtures. It shares the real package's import path (under the
// fixture source root) so poolcheck's type matching treats fixture subsets
// exactly like production ones.
package dataset

type Entity = uint32

type Fingerprint struct{ Hi, Lo uint64 }

type Scratch struct{ depth int }

func NewScratch() *Scratch { return &Scratch{} }

type Subset struct {
	sc   *Scratch
	size int
}

func (s *Subset) PartitionScratch(e Entity, sc *Scratch) (with, without *Subset) {
	return &Subset{sc: sc}, &Subset{sc: sc}
}

func (s *Subset) Partition(e Entity) (with, without *Subset) {
	return &Subset{}, &Subset{}
}

func (s *Subset) Release() { s.sc = nil }

func (s *Subset) Unpool() { s.sc = nil }

func (s *Subset) Retain() {}

func (s *Subset) Size() int { return s.size }

func (s *Subset) Fingerprint() Fingerprint { return Fingerprint{} }
