package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolCheck enforces the pooled-Subset ownership discipline from
// internal/dataset: a *dataset.Subset acquired from a Scratch partition
// source must reach Release on every path out of the acquiring function,
// unless it is Unpooled, Retained, returned, or handed off through a store
// annotated "// lint:owns". The analyzer also flags Release after Release
// (double free back into the pool) and any use after Release (the bitset
// may already be recycled into another subset).
//
// Ownership model, matching how the codebase actually uses the pool:
//
//   - Acquire: calling PartitionScratch or PartitionGroupScratch on a
//     subset, or calling a same-package function that (transitively)
//     returns such a result.
//   - Discharge: Release (exactly once), Unpool, Retain (a second owner now
//     exists, so per-value tracking ends), returning the value, deferring
//     its Release, or passing it to a same-package function that consumes
//     it (releases/unpools/stores its parameter).
//   - Borrow: passing the value as an argument otherwise. Callees like
//     childBounds read the halves; the caller still releases them.
//   - Escape: storing into a struct field, map, slice, channel, composite
//     literal, or global transfers ownership out of the function and must
//     carry a "// lint:owns" marker on the line — otherwise it is exactly
//     the silent-leak shape PRs 3/4/6 fixed by hand.
//
// Functions containing goto are skipped (the structured walker cannot
// follow them); _test.go files are exempt.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "check that pooled dataset.Subset values are released on every path",
	Run:  runPoolCheck,
}

const datasetPathSuffix = "internal/dataset"

// isPooledSubset reports whether t is *dataset.Subset (matched by package
// path suffix so the check works both on this module and on test
// fixtures).
func isPooledSubset(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Subset" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "dataset" || strings.HasSuffix(obj.Pkg().Path(), datasetPathSuffix))
}

// ---- package summaries ------------------------------------------------

// poolSummaries holds the interprocedural facts poolcheck derives for the
// package under analysis: which same-package functions return freshly
// acquired (caller-owned) subsets, and which consume a subset parameter.
type poolSummaries struct {
	// owner[f][i] is true when result i of f is a pooled subset the
	// caller must release.
	owner map[*types.Func]map[int]bool
	// consume[f][j] is true when f takes over parameter j (releases,
	// unpools, or stores it), so passing an owned value discharges it.
	consume map[*types.Func]map[int]bool
}

func (s *poolSummaries) ownsResult(f *types.Func, i int) bool {
	return f != nil && s.owner[f][i]
}

func (s *poolSummaries) consumesParam(f *types.Func, j int) bool {
	return f != nil && s.consume[f][j]
}

// acquireResults returns the set of result indices of call that the caller
// owns, or nil when call is not an acquisition.
func (s *poolSummaries) acquireResults(info *types.Info, call *ast.CallExpr) map[int]bool {
	if isConversion(info, call) {
		return nil
	}
	f := calleeFunc(info, call)
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if (f.Name() == "PartitionScratch" || f.Name() == "PartitionGroupScratch") && sig.Recv() != nil && isPooledSubset(sig.Recv().Type()) {
		owned := map[int]bool{}
		for i := 0; i < sig.Results().Len(); i++ {
			if isPooledSubset(sig.Results().At(i).Type()) {
				owned[i] = true
			}
		}
		return owned
	}
	if m := s.owner[f]; len(m) > 0 {
		return m
	}
	return nil
}

// buildPoolSummaries computes owner/consume facts for the package by
// fixpoint over a syntactic scan of every function body. The scan is
// deliberately simple: a result is owner-returning when some return path
// returns an acquisition (directly, or via a local that was assigned one);
// a parameter is consumed when the body releases/unpools it, stores it
// into a non-local location, or forwards it to a consuming callee.
func buildPoolSummaries(pass *Pass) *poolSummaries {
	sums := &poolSummaries{
		owner:   map[*types.Func]map[int]bool{},
		consume: map[*types.Func]map[int]bool{},
	}
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fnDecl{obj, fd})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if updateOwnerSummary(pass, sums, fn.obj, fn.decl) {
				changed = true
			}
			if updateConsumeSummary(pass, sums, fn.obj, fn.decl) {
				changed = true
			}
		}
	}
	return sums
}

func updateOwnerSummary(pass *Pass, sums *poolSummaries, obj *types.Func, decl *ast.FuncDecl) bool {
	sig := obj.Type().(*types.Signature)
	pooledResults := map[int]bool{}
	for i := 0; i < sig.Results().Len(); i++ {
		if isPooledSubset(sig.Results().At(i).Type()) {
			pooledResults[i] = true
		}
	}
	if len(pooledResults) == 0 {
		return false
	}

	// Locals ever assigned from an acquisition result.
	acquired := map[*types.Var]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Rhs) != 1 {
			return true
		}
		call, ok := unparen(a.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		owned := sums.acquireResults(pass.TypesInfo, call)
		if len(owned) == 0 {
			return true
		}
		for i, lhs := range a.Lhs {
			if !owned[i] {
				continue
			}
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if v := localVarOf(pass.TypesInfo, id); v != nil {
					acquired[v] = true
				}
			}
		}
		return true
	})

	found := map[int]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 1 && sig.Results().Len() > 1 {
			// Tuple forwarding: return g(...).
			if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
				for i := range sums.acquireResults(pass.TypesInfo, call) {
					found[i] = true
				}
			}
			return true
		}
		for i, res := range ret.Results {
			if !pooledResults[i] {
				continue
			}
			switch e := unparen(res).(type) {
			case *ast.Ident:
				if v := localVarOf(pass.TypesInfo, e); v != nil && acquired[v] {
					found[i] = true
				}
			case *ast.CallExpr:
				if owned := sums.acquireResults(pass.TypesInfo, e); owned[0] && len(ret.Results) == sig.Results().Len() {
					found[i] = true
				}
			}
		}
		return true
	})

	changed := false
	for i := range found {
		if !sums.owner[obj][i] {
			if sums.owner[obj] == nil {
				sums.owner[obj] = map[int]bool{}
			}
			sums.owner[obj][i] = true
			changed = true
		}
	}
	return changed
}

func updateConsumeSummary(pass *Pass, sums *poolSummaries, obj *types.Func, decl *ast.FuncDecl) bool {
	sig := obj.Type().(*types.Signature)
	params := map[*types.Var]int{}
	for j := 0; j < sig.Params().Len(); j++ {
		p := sig.Params().At(j)
		if isPooledSubset(p.Type()) {
			params[p] = j
		}
	}
	if len(params) == 0 {
		return false
	}
	isParam := func(e ast.Expr) (*types.Var, int, bool) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil, 0, false
		}
		v := localVarOf(pass.TypesInfo, id)
		if v == nil {
			return nil, 0, false
		}
		j, ok := params[v]
		return v, j, ok
	}

	found := map[int]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
				if _, j, ok := isParam(sel.X); ok {
					switch sel.Sel.Name {
					case "Release", "Unpool":
						found[j] = true
					}
				}
			}
			f := calleeFunc(pass.TypesInfo, n)
			for argIdx, arg := range n.Args {
				if _, j, ok := isParam(arg); ok && sums.consumesParam(f, argIdx) {
					found[j] = true
				}
			}
		case *ast.AssignStmt:
			// A store of the parameter into a field/index/global
			// counts as consumption: ownership moved into a
			// structure the callee is responsible for.
			storing := false
			for _, lhs := range n.Lhs {
				switch l := unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					storing = true
				case *ast.Ident:
					if v := localVarOf(pass.TypesInfo, l); v == nil {
						if obj := pass.TypesInfo.ObjectOf(l); obj != nil && obj.Parent() == pass.Pkg.Scope() {
							storing = true // package-level var
						}
					}
				}
			}
			if !storing {
				return true
			}
			for _, rhs := range n.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if _, j, ok := isParam(id); ok {
							found[j] = true
						}
					}
					return true
				})
			}
		}
		return true
	})

	changed := false
	for j := range found {
		if !sums.consume[obj][j] {
			if sums.consume[obj] == nil {
				sums.consume[obj] = map[int]bool{}
			}
			sums.consume[obj][j] = true
			changed = true
		}
	}
	return changed
}

// localVarOf resolves id to the non-field *types.Var it names, or nil.
func localVarOf(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// ---- per-function ownership walk --------------------------------------

type pstatus int

const (
	psOwned    pstatus = iota // must still be released
	psCond                    // released on some paths only
	psReleased                // released; further touch is a bug
	psEscaped                 // ownership left the function; tracking over
)

// pcell is the tracked state of one acquisition. Aliased variables share a
// cell; branch forks clone cells so the merge can compare outcomes.
type pcell struct {
	name string
	pos  token.Pos // acquisition site, anchor for leak reports
	st   pstatus
}

type pstate struct {
	vars map[*types.Var]*pcell
}

func newPstate() *pstate { return &pstate{vars: map[*types.Var]*pcell{}} }

func (s *pstate) clone() *pstate {
	out := newPstate()
	copied := map[*pcell]*pcell{}
	for v, c := range s.vars {
		nc, ok := copied[c]
		if !ok {
			cc := *c
			nc = &cc
			copied[c] = nc
		}
		out.vars[v] = nc
	}
	return out
}

// merge combines two fall-through states after a branch. Escaped wins over
// everything (tracking already ended on one path); Released on both paths
// stays Released; Owned on both stays Owned; a mix of Owned and anything
// else becomes Cond — still owed a Release, reported if it reaches an
// exit.
func mergePstates(a, b *pstate) *pstate {
	out := newPstate()
	for v, ca := range a.vars {
		cb, ok := b.vars[v]
		if !ok {
			nc := *ca
			if nc.st == psOwned {
				nc.st = psCond
			}
			out.vars[v] = &nc
			continue
		}
		nc := *ca
		switch {
		case ca.st == cb.st:
		case ca.st == psEscaped || cb.st == psEscaped:
			nc.st = psEscaped
		case ca.st == psOwned || cb.st == psOwned ||
			ca.st == psCond || cb.st == psCond:
			nc.st = psCond
		default:
			nc.st = psReleased
		}
		out.vars[v] = &nc
	}
	for v, cb := range b.vars {
		if _, ok := a.vars[v]; ok {
			continue
		}
		nc := *cb
		if nc.st == psOwned {
			nc.st = psCond
		}
		out.vars[v] = &nc
	}
	return out
}

type poolWalker struct {
	pass *Pass
	sums *poolSummaries
	name string // enclosing function, for messages

	// loopBase stacks the state at entry to each enclosing loop body so
	// break/continue can leak-check loop-local acquisitions.
	loopBase []*pstate

	reportedLeak map[token.Pos]bool
	reportedUse  map[token.Pos]bool
}

func runPoolCheck(pass *Pass) error {
	sums := buildPoolSummaries(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			runPoolWalk(pass, sums, funcName(fd), fd.Body)
			// Function literals are checked as their own scopes:
			// variables captured from the enclosing function are
			// untracked there (the outer walk marks them escaped),
			// while acquisitions inside the literal must be
			// discharged inside it.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					runPoolWalk(pass, sums, "func literal in "+funcName(fd), fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

func runPoolWalk(pass *Pass, sums *poolSummaries, name string, body *ast.BlockStmt) {
	hasGoto := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			hasGoto = true
		}
		return true
	})
	if hasGoto {
		return // unstructured control flow: bail rather than guess
	}
	w := &poolWalker{
		pass:         pass,
		sums:         sums,
		name:         name,
		reportedLeak: map[token.Pos]bool{},
		reportedUse:  map[token.Pos]bool{},
	}
	st, terminated := w.walkStmts(body.List, newPstate())
	if !terminated {
		w.leakCheck(st, nil)
	}
}

// leakCheck reports cells still owed a Release. When base is non-nil only
// cells absent from base (i.e. acquired inside the scope being left) are
// checked — the loop-body / break / continue case.
func (w *poolWalker) leakCheck(st *pstate, base *pstate) {
	for v, c := range st.vars {
		if base != nil {
			if _, ok := base.vars[v]; ok {
				continue
			}
		}
		if c.st != psOwned && c.st != psCond {
			continue
		}
		if w.reportedLeak[c.pos] {
			continue
		}
		w.reportedLeak[c.pos] = true
		what := "is not released"
		if c.st == psCond {
			what = "is not released on every path"
		}
		w.pass.Reportf(c.pos, "pooled subset %s acquired here %s out of %s; call Release (or Unpool/Retain, or return it)", c.name, what, w.name)
	}
}

func (w *poolWalker) walkStmts(list []ast.Stmt, st *pstate) (*pstate, bool) {
	for _, s := range list {
		var term bool
		st, term = w.walkStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *poolWalker) walkStmt(s ast.Stmt, st *pstate) (*pstate, bool) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.ExprStmt:
		w.walkExpr(s.X, st)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			// Acquisition used as a bare statement: both results
			// dropped on the floor.
			for range w.sums.acquireResults(w.pass.TypesInfo, call) {
				if !w.reportedLeak[s.Pos()] {
					w.reportedLeak[s.Pos()] = true
					w.pass.Reportf(s.Pos(), "result of pooled acquisition discarded in %s; it must be released", w.name)
				}
			}
			if isPanicCall(w.pass.TypesInfo, call) {
				return st, true
			}
		}
	case *ast.AssignStmt:
		w.walkAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					w.walkExpr(val, st)
				}
				if len(vs.Values) == 1 {
					if call, ok := unparen(vs.Values[0]).(*ast.CallExpr); ok {
						owned := w.sums.acquireResults(w.pass.TypesInfo, call)
						for i, name := range vs.Names {
							if !owned[i] || name.Name == "_" {
								continue
							}
							if v := localVarOf(w.pass.TypesInfo, name); v != nil {
								st.vars[v] = &pcell{name: name.Name, pos: name.Pos(), st: psOwned}
							}
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		w.walkReturn(s, st)
		w.leakCheck(st, nil)
		return st, true
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.walkExpr(s.Cond, st)
		thenSt, thenTerm := w.walkStmts(s.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.walkStmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergePstates(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st)
		}
		base := st.clone()
		w.loopBase = append(w.loopBase, base)
		bodySt, bodyTerm := w.walkStmts(s.Body.List, st.clone())
		if s.Post != nil && !bodyTerm {
			bodySt, _ = w.walkStmt(s.Post, bodySt)
		}
		w.loopBase = w.loopBase[:len(w.loopBase)-1]
		if !bodyTerm {
			w.leakCheck(bodySt, base)
		}
		if s.Cond == nil && !loopHasBreak(s.Body) {
			return st, true // for {} without break never falls through
		}
		return mergePstates(base, dropScoped(bodySt, base)), false
	case *ast.RangeStmt:
		w.walkExpr(s.X, st)
		base := st.clone()
		w.loopBase = append(w.loopBase, base)
		bodySt, bodyTerm := w.walkStmts(s.Body.List, st.clone())
		w.loopBase = w.loopBase[:len(w.loopBase)-1]
		if !bodyTerm {
			w.leakCheck(bodySt, base)
		}
		return mergePstates(base, dropScoped(bodySt, base)), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st)
		}
		return w.walkCases(s.Body, st, nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		return w.walkCases(s.Body, st, s.Assign)
	case *ast.SelectStmt:
		var arms []*pstate
		allTerm := len(s.Body.List) > 0
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			armSt := st.clone()
			if cc.Comm != nil {
				armSt, _ = w.walkStmt(cc.Comm, armSt)
			}
			armSt, term := w.walkStmts(cc.Body, armSt)
			if !term {
				allTerm = false
				arms = append(arms, armSt)
			}
		}
		if allTerm {
			return st, true
		}
		out := arms[0]
		for _, a := range arms[1:] {
			out = mergePstates(out, a)
		}
		return out, false
	case *ast.SendStmt:
		w.walkExpr(s.Chan, st)
		w.walkExpr(s.Value, st)
		if id, ok := unparen(s.Value).(*ast.Ident); ok {
			w.escapeStore(id, s.Pos(), "sent to a channel", st)
		}
	case *ast.DeferStmt:
		w.walkHandoff(s.Call, st)
	case *ast.GoStmt:
		w.walkHandoff(s.Call, st)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK, token.CONTINUE:
			if s.Label == nil && len(w.loopBase) > 0 {
				w.leakCheck(st, w.loopBase[len(w.loopBase)-1])
			}
			return st, true
		case token.FALLTHROUGH:
			// Case bodies are merged conservatively; nothing to do.
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IncDecStmt:
		w.walkExpr(s.X, st)
	default:
		// Unknown statement kind: scan expressions for uses.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.useCheckIdent(e, st)
			}
			return true
		})
	}
	return st, false
}

func (w *poolWalker) walkCases(body *ast.BlockStmt, st *pstate, assign ast.Stmt) (*pstate, bool) {
	var arms []*pstate
	hasDefault := false
	allTerm := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		armSt := st.clone()
		if assign != nil {
			armSt, _ = w.walkStmt(assign, armSt)
		}
		for _, e := range cc.List {
			w.walkExpr(e, armSt)
		}
		armSt, term := w.walkStmts(cc.Body, armSt)
		if !term {
			allTerm = false
			arms = append(arms, armSt)
		}
	}
	if !hasDefault {
		arms = append(arms, st)
		allTerm = false
	}
	if allTerm {
		return st, true
	}
	out := arms[0]
	for _, a := range arms[1:] {
		out = mergePstates(out, a)
	}
	return out, false
}

// dropScoped removes variables not visible outside the loop body (absent
// from base) so out-of-scope cells do not haunt the post-loop state.
func dropScoped(st, base *pstate) *pstate {
	out := newPstate()
	for v, c := range st.vars {
		if _, ok := base.vars[v]; ok {
			out.vars[v] = c
		}
	}
	return out
}

func loopHasBreak(body *ast.BlockStmt) bool {
	found := false
	var depth int
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			depth++
			ast.Inspect(b, func(m ast.Node) bool {
				if m == b {
					return true
				}
				return visit(m)
			})
			depth--
			return false
		case *ast.BranchStmt:
			if b.Tok == token.BREAK && (b.Label != nil || depth == 0) {
				found = true
			}
		case *ast.FuncLit:
			return false
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		return visit(n)
	})
	return found
}

func (w *poolWalker) walkReturn(ret *ast.ReturnStmt, st *pstate) {
	for _, res := range ret.Results {
		switch e := unparen(res).(type) {
		case *ast.Ident:
			if c := w.cellOf(e, st); c != nil {
				if c.st == psReleased {
					w.reportUse(e, "returned after Release")
				}
				c.st = psEscaped // ownership transferred to the caller
				continue
			}
			w.walkExpr(res, st)
		case *ast.CompositeLit:
			// Returning a struct/slice holding the subset also
			// transfers ownership out.
			w.markIdentsEscaped(e, st)
		default:
			w.walkExpr(res, st)
		}
	}
}

// walkHandoff covers `go f(...)` and `defer f(...)`: every tracked value
// referenced by the call — including closure captures — leaves this
// function's release obligation. `defer v.Release()` is the idiomatic
// discharge; a goroutine capture makes the callee responsible.
func (w *poolWalker) walkHandoff(call *ast.CallExpr, st *pstate) {
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c := w.cellOf(id, st); c != nil {
				if c.st == psReleased {
					w.reportUse(id, "used after Release")
				}
				c.st = psEscaped
			}
		}
		return true
	})
}

func (w *poolWalker) walkAssign(a *ast.AssignStmt, st *pstate) {
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		for _, e := range a.Rhs {
			w.walkExpr(e, st)
		}
		for _, e := range a.Lhs {
			w.walkExpr(e, st)
		}
		return
	}

	// Multi-result acquisition: with, without := cs.PartitionScratch(...)
	if len(a.Rhs) == 1 {
		if call, ok := unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if owned := w.sums.acquireResults(w.pass.TypesInfo, call); len(owned) > 0 {
				w.walkExpr(call, st)
				for i, lhs := range a.Lhs {
					w.assignTo(lhs, owned[i], a, st)
				}
				return
			}
		}
	}

	// General 1:1 assignments.
	if len(a.Lhs) == len(a.Rhs) {
		type rhsInfo struct {
			aliasCell *pcell
			owned     bool
		}
		infos := make([]rhsInfo, len(a.Rhs))
		for i, rhs := range a.Rhs {
			rhs = unparen(rhs)
			if id, ok := rhs.(*ast.Ident); ok {
				if c := w.cellOf(id, st); c != nil {
					if c.st == psReleased {
						w.reportUse(id, "used after Release")
					}
					infos[i].aliasCell = c
					continue
				}
			}
			if call, ok := rhs.(*ast.CallExpr); ok {
				if owned := w.sums.acquireResults(w.pass.TypesInfo, call); owned[0] {
					w.walkExpr(call, st)
					infos[i].owned = true
					continue
				}
			}
			w.walkExpr(rhs, st)
		}
		for i, lhs := range a.Lhs {
			in := infos[i]
			switch {
			case in.owned:
				w.assignTo(lhs, true, a, st)
			case in.aliasCell != nil:
				if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					if v := localVarOf(w.pass.TypesInfo, id); v != nil {
						w.overwriteCheck(v, st)
						st.vars[v] = in.aliasCell // alias shares the cell
						continue
					}
				}
				// Stored into a field/index/global: escape.
				w.walkExpr(lhs, st)
				if in.aliasCell.st != psEscaped && !w.pass.HasMarker(a.Pos(), "lint:owns") {
					w.pass.Reportf(a.Pos(), "pooled subset %s stored without // lint:owns in %s; the store must take ownership explicitly", in.aliasCell.name, w.name)
				}
				in.aliasCell.st = psEscaped
			default:
				w.assignTo(lhs, false, a, st)
			}
		}
		return
	}

	for _, e := range a.Rhs {
		w.walkExpr(e, st)
	}
	for _, e := range a.Lhs {
		w.assignTo(e, false, a, st)
	}
}

// assignTo applies one assignment target. owned says the incoming value is
// a fresh acquisition the receiver must track.
func (w *poolWalker) assignTo(lhs ast.Expr, owned bool, a *ast.AssignStmt, st *pstate) {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			if owned && !w.reportedLeak[a.Pos()] {
				w.reportedLeak[a.Pos()] = true
				w.pass.Reportf(a.Pos(), "pooled acquisition assigned to _ in %s; it must be released", w.name)
			}
			return
		}
		if v := localVarOf(w.pass.TypesInfo, l); v != nil {
			w.overwriteCheck(v, st)
			if owned {
				st.vars[v] = &pcell{name: l.Name, pos: l.Pos(), st: psOwned}
			} else {
				delete(st.vars, v)
			}
			return
		}
		// Package-level variable: an escape when owned.
		if owned && !w.pass.HasMarker(a.Pos(), "lint:owns") {
			w.pass.Reportf(a.Pos(), "pooled acquisition stored in package variable without // lint:owns in %s", w.name)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		w.walkExpr(l, st)
		if owned && !w.pass.HasMarker(a.Pos(), "lint:owns") {
			w.pass.Reportf(a.Pos(), "pooled acquisition stored without // lint:owns in %s; annotate the ownership transfer or keep it in a local until Release", w.name)
		}
	default:
		w.walkExpr(l, st)
	}
}

// overwriteCheck flags reassigning a variable that still owns a subset —
// the old value becomes unreachable unreleased.
func (w *poolWalker) overwriteCheck(v *types.Var, st *pstate) {
	c, ok := st.vars[v]
	if !ok {
		return
	}
	if (c.st == psOwned || c.st == psCond) && !w.reportedLeak[c.pos] {
		w.reportedLeak[c.pos] = true
		w.pass.Reportf(c.pos, "pooled subset %s acquired here is overwritten before Release in %s", c.name, w.name)
	}
	delete(st.vars, v)
}

func (w *poolWalker) walkExpr(e ast.Expr, st *pstate) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		w.useCheckIdent(e, st)
	case *ast.ParenExpr:
		w.walkExpr(e.X, st)
	case *ast.CallExpr:
		w.walkCall(e, st)
	case *ast.SelectorExpr:
		w.walkExpr(e.X, st)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Y, st)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// &v: the address escapes tracking.
			if id, ok := unparen(e.X).(*ast.Ident); ok {
				if c := w.cellOf(id, st); c != nil {
					c.st = psEscaped
					return
				}
			}
		}
		w.walkExpr(e.X, st)
	case *ast.StarExpr:
		w.walkExpr(e.X, st)
	case *ast.IndexExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Index, st)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, st)
	case *ast.SliceExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Low, st)
		w.walkExpr(e.High, st)
		w.walkExpr(e.Max, st)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, st)
	case *ast.KeyValueExpr:
		w.walkExpr(e.Key, st)
		w.walkExpr(e.Value, st)
	case *ast.CompositeLit:
		// A tracked subset placed in a composite literal escapes into
		// that value; require the ownership marker.
		for _, el := range e.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.walkExpr(kv.Key, st)
				val = kv.Value
			}
			if id, ok := unparen(val).(*ast.Ident); ok {
				if w.escapeStore(id, e.Pos(), "placed in a composite literal", st) {
					continue
				}
			}
			w.walkExpr(val, st)
		}
	case *ast.FuncLit:
		// Closure capture: the closure (analyzed separately) or its
		// spawner owns the value now.
		w.markIdentsEscaped(e.Body, st)
	}
}

func (w *poolWalker) walkCall(call *ast.CallExpr, st *pstate) {
	if isConversion(w.pass.TypesInfo, call) {
		for _, a := range call.Args {
			w.walkExpr(a, st)
		}
		return
	}

	// v.Release() / v.Unpool() / v.Retain() on a tracked variable.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			if c := w.cellOf(id, st); c != nil {
				switch sel.Sel.Name {
				case "Release":
					switch c.st {
					case psReleased:
						if !w.reportedUse[call.Pos()] {
							w.reportedUse[call.Pos()] = true
							w.pass.Reportf(call.Pos(), "second Release of %s in %s; the subset was already returned to the pool", c.name, w.name)
						}
					case psEscaped:
						// Another owner exists; not ours to judge.
					default:
						c.st = psReleased
					}
					return
				case "Unpool", "Retain":
					if c.st == psReleased {
						w.reportUse(id, "used after Release")
					}
					c.st = psEscaped
					return
				}
			}
		}
	}

	switch builtinName(w.pass.TypesInfo, call) {
	case "append":
		for i, a := range call.Args {
			if i > 0 {
				if id, ok := unparen(a).(*ast.Ident); ok {
					if w.escapeStore(id, a.Pos(), "appended to a slice", st) {
						continue
					}
				}
			}
			w.walkExpr(a, st)
		}
		return
	case "":
		// Not a builtin; fall through to the normal call handling.
	default:
		for _, a := range call.Args {
			w.walkExpr(a, st)
		}
		return
	}

	w.walkExpr(call.Fun, st)
	callee := calleeFunc(w.pass.TypesInfo, call)
	for i, a := range call.Args {
		if id, ok := unparen(a).(*ast.Ident); ok {
			if c := w.cellOf(id, st); c != nil {
				if c.st == psReleased {
					w.reportUse(id, "passed after Release")
				}
				if w.sums.consumesParam(callee, i) {
					c.st = psEscaped // callee takes over
				}
				continue
			}
		}
		w.walkExpr(a, st)
	}
}

// escapeStore handles a tracked identifier flowing into a store-like sink
// (channel send, slice append, composite literal). Returns true when id
// was tracked and has been handled.
func (w *poolWalker) escapeStore(id *ast.Ident, pos token.Pos, how string, st *pstate) bool {
	c := w.cellOf(id, st)
	if c == nil {
		return false
	}
	if c.st == psReleased {
		w.reportUse(id, "used after Release")
	}
	if c.st != psEscaped && !w.pass.HasMarker(pos, "lint:owns") {
		if !w.reportedUse[pos] {
			w.reportedUse[pos] = true
			w.pass.Reportf(pos, "pooled subset %s %s without // lint:owns in %s; the receiving structure must own the Release", c.name, how, w.name)
		}
	}
	c.st = psEscaped
	return true
}

func (w *poolWalker) markIdentsEscaped(n ast.Node, st *pstate) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if c := w.cellOf(id, st); c != nil {
				if c.st == psReleased {
					w.reportUse(id, "used after Release")
				}
				c.st = psEscaped
			}
		}
		return true
	})
}

func (w *poolWalker) useCheckIdent(e ast.Expr, st *pstate) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if c := w.cellOf(id, st); c != nil && c.st == psReleased {
		w.reportUse(id, "used after Release")
	}
}

func (w *poolWalker) reportUse(id *ast.Ident, what string) {
	if w.reportedUse[id.Pos()] {
		return
	}
	w.reportedUse[id.Pos()] = true
	w.pass.Reportf(id.Pos(), "pooled subset %s %s in %s; the underlying bitset may already be recycled", id.Name, what, w.name)
}

func (w *poolWalker) cellOf(id *ast.Ident, st *pstate) *pcell {
	v := localVarOf(w.pass.TypesInfo, id)
	if v == nil {
		return nil
	}
	return st.vars[v]
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	return builtinName(info, call) == "panic"
}
