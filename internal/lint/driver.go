package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
)

// This file implements the `go vet -vettool` driver protocol (the same
// contract golang.org/x/tools/go/analysis/unitchecker speaks): cmd/go
// compiles each package, writes a JSON "vet.cfg" describing its sources
// and the export data of its dependencies, and invokes the tool once per
// package with the config path as the sole positional argument. The tool
// type-checks from the config alone — no go/packages, no build system —
// which keeps the driver standard-library only.

// VetConfig mirrors the JSON configuration cmd/go passes to a vet tool.
// Field names are fixed by the protocol.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// JSONDiagnostic is one finding in -json output: the position rendered
// file:line:col, and the message.
type JSONDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// RunUnit analyzes the single package described by cfgFile and returns the
// process exit code: 0 for clean (or JSON mode, which always reports
// success and carries findings in the payload), 1 when findings were
// printed, 2 on driver errors. Plain findings go to stderr as
// "file:line:col: message"; JSON goes to stdout keyed by package ID and
// analyzer name, matching the unitchecker output shape.
func RunUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "setdisclint: %v\n", err)
		return 2
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "setdisclint: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	// The driver contributes no cross-package facts, but the protocol
	// expects the .vetx output file to exist so cmd/go can cache it and
	// feed it to dependents via PackageVetx.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "setdisclint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // a compile step elsewhere reports it better
			}
			fmt.Fprintf(stderr, "setdisclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "setdisclint: %v\n", err)
		return 1
	}

	type finding struct {
		analyzer string
		diag     Diagnostic
	}
	var findings []finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, finding{a.Name, d})
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(stderr, "setdisclint: %s: %v\n", a.Name, err)
			return 2
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		return findings[i].diag.Pos < findings[j].diag.Pos
	})

	if jsonOut {
		tree := map[string]map[string][]JSONDiagnostic{
			cfg.ID: {},
		}
		for _, f := range findings {
			tree[cfg.ID][f.analyzer] = append(tree[cfg.ID][f.analyzer], JSONDiagnostic{
				Posn:    fset.Position(f.diag.Pos).String(),
				Message: f.diag.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		enc.Encode(tree)
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%v: %s\n", fset.Position(f.diag.Pos), f.diag.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// typecheck builds type information for the package using the compiler
// export data cmd/go listed in the config.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *VetConfig) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	tc := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		Error:     func(error) {}, // collect via Check's return; keep going
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewTypesInfo allocates the types.Info maps the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
