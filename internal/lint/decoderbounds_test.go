package lint_test

import (
	"testing"

	"setdiscovery/internal/lint"
	"setdiscovery/internal/lint/linttest"
)

// TestDecoderBounds proves unbounded decoded counts are flagged at
// allocation and loop sites — including through same-package reader
// helpers — while bound-checked, clamped, read-per-iteration, and
// lint:bounded-annotated sites pass.
func TestDecoderBounds(t *testing.T) {
	linttest.Run(t, lint.DecoderBounds, "decoderbounds")
}
