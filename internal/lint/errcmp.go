package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp makes the PR 5 review fix permanent: production code classifies
// errors with errors.Is / errors.As, never by message substring and never
// by == against anything but nil or a package-level sentinel. Message
// matching breaks the moment a wrapping layer (fmt.Errorf("...: %w", err))
// or a reworded message lands; == misses wrapped sentinels entirely, which
// is why the router's drain path once failed to classify its own
// "no backend" error.
//
// Flagged:
//
//   - strings.Contains/HasPrefix/HasSuffix/Index/EqualFold with an
//     err.Error() argument;
//   - == / != where one operand is an error and the other is neither nil
//     nor a package-level sentinel variable;
//   - switch on an error value with non-sentinel case expressions.
//
// Comparing against a bare package-level sentinel (err == ErrContradiction)
// stays legal: identity against an unwrapped sentinel is exactly what
// errors.Is reduces to, and the snapshot codec relies on distinguishing
// the bare value from a wrapped one. _test.go files are exempt.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "check that errors are classified with errors.Is/As, not substrings or ad-hoc ==",
	Run:  runErrCmp,
}

func runErrCmp(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkStringMatch(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkErrEquality(pass, n)
				}
			case *ast.SwitchStmt:
				checkErrSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkStringMatch flags strings.* matching over err.Error() text.
func checkStringMatch(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "strings" {
		return
	}
	switch f.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorMessageCall(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(), "error classified by message substring (strings.%s on err.Error()); define a sentinel or error type and use errors.Is/As", f.Name())
			return
		}
	}
}

// isErrorMessageCall reports whether e is a call of the Error method on an
// error value (directly or through a selector chain).
func isErrorMessageCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.Identical(t, errType) || types.Implements(t, errType.Underlying().(*types.Interface))
}

func checkErrEquality(pass *Pass, cmp *ast.BinaryExpr) {
	xErr := operandIsError(pass.TypesInfo, cmp.X)
	yErr := operandIsError(pass.TypesInfo, cmp.Y)
	if !xErr && !yErr {
		return
	}
	// One side is the value under classification (any shape); the OTHER
	// side must be nil or a bare package-level sentinel.
	if isNilOrSentinel(pass, cmp.X) || isNilOrSentinel(pass, cmp.Y) {
		return
	}
	pass.Reportf(cmp.Pos(), "error compared with %s against a non-sentinel; use errors.Is (it matches wrapped errors too)", cmp.Op)
}

// operandIsError reports whether e has static interface type error.
func operandIsError(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// isNilOrSentinel reports whether e is nil or names a package-level error
// variable — the classic `var ErrFoo = errors.New(...)` sentinel, possibly
// selector-qualified (io.EOF, discovery.ErrContradiction).
func isNilOrSentinel(pass *Pass, e ast.Expr) bool {
	e = unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.IsNil() {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		return isSentinelVar(pass.TypesInfo.ObjectOf(x))
	case *ast.SelectorExpr:
		return isSentinelVar(pass.TypesInfo.ObjectOf(x.Sel))
	}
	return false
}

// isSentinelVar reports whether obj is a package-level error variable.
func isSentinelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !operandIsError(pass.TypesInfo, sw.Tag) {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isNilOrSentinel(pass, e) {
				continue
			}
			pass.Reportf(e.Pos(), "error switched against a non-sentinel case; use errors.Is in if/else (it matches wrapped errors too)")
		}
	}
}
