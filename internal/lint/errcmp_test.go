package lint_test

import (
	"testing"

	"setdiscovery/internal/lint"
	"setdiscovery/internal/lint/linttest"
)

// TestErrCmp proves substring matching on err.Error() and ad-hoc ==/switch
// comparisons are flagged, while nil checks, bare package-level sentinels,
// and errors.Is pass.
func TestErrCmp(t *testing.T) {
	linttest.Run(t, lint.ErrCmp, "errcmp")
}
