// Package linttest runs a lint.Analyzer over a GOPATH-style fixture tree
// and checks its findings against expectations written as "// want"
// comments — the golang.org/x/tools/go/analysis/analysistest convention:
//
//	bad() // want `regexp for first finding` `regexp for second`
//
// Each backquoted (or double-quoted) pattern is a regular expression that
// must match one diagnostic reported on that line; diagnostics without a
// matching expectation, and expectations without a matching diagnostic,
// fail the test.
//
// Fixture packages live under testdata/src/<import-path>/. Imports resolve
// within the fixture tree first (so fixtures can share a fake
// setdiscovery/internal/dataset), then fall back to compiling the standard
// library from source — the fixtures type-check without any precompiled
// export data.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"setdiscovery/internal/lint"
)

// Run loads testdata/src/<pkgPath>, applies the analyzer, and verifies its
// diagnostics against the fixture's want-comments.
func Run(t *testing.T, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	ld := &loader{
		fset: token.NewFileSet(),
		root: filepath.Join("testdata", "src"),
		pkgs: map[string]*loadedPkg{},
	}
	lp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var diags []lint.Diagnostic
	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     lp.files,
		Pkg:       lp.pkg,
		TypesInfo: lp.info,
		Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	checkExpectations(t, ld.fset, lp.files, diags)
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture imports: testdata first, then the standard
// library compiled from source.
type loader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*loadedPkg
	std  types.Importer
}

func (l *loader) Import(path string) (*types.Package, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp.pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := lint.NewTypesInfo()
	conf := &types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	return lp, nil
}

// expectation is one want-pattern at a file:line.
type expectation struct {
	re   *regexp.Regexp
	used bool
}

type lineKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q: %v", pos, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: unquoting %q: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, exp := range wants[key] {
			if !exp.used && exp.re.MatchString(d.Message) {
				exp.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, exp.re)
			}
		}
	}
}
