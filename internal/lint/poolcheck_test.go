package lint_test

import (
	"testing"

	"setdiscovery/internal/lint"
	"setdiscovery/internal/lint/linttest"
)

// TestPoolCheck proves the analyzer flags the three historical leak shapes
// (contradiction path, backtracking trail drop, abandoned batch round) plus
// double-release, use-after-release, and unannotated escapes — and stays
// quiet on the disciplined patterns the codebase ships.
func TestPoolCheck(t *testing.T) {
	linttest.Run(t, lint.PoolCheck, "poolcheck")
}
