package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DecoderBounds guards the untrusted-codec discipline PR 5's fuzzing
// established: a count or length decoded from input must be compared
// against something (remaining input length, an element count, a sanity
// cap) before it sizes an allocation or bounds a pure accumulation loop.
// Otherwise a hostile snapshot/shard/wire payload declaring k=2^60
// entries turns into an instant OOM.
//
// Taint seeds are the encoding/binary readers (Uvarint, Varint,
// ReadUvarint, ReadVarint, and the ByteOrder Uint16/32/64 methods) plus
// same-package helpers that (transitively) return such a value unchecked —
// e.g. a stateReader.uvarint wrapper. Taint follows assignments,
// arithmetic, and conversions; each copy is bounded independently. Any
// comparison mentioning the value sanitizes it from that point on (the
// decoder idiom is `if n > uint64(len(rest)) { return errTruncated }`), as
// does clamping through the min/max builtins.
//
// Flagged sites: make() with a tainted length or capacity, and for-loops
// whose condition is tainted while the body has no early exit (a loop that
// reads input per iteration fails fast on truncation and is fine; a pure
// accumulation loop spins k times on a forged k). "// lint:bounded" on the
// line opts out a site that is bounded by construction. _test.go files are
// exempt.
var DecoderBounds = &Analyzer{
	Name: "decoderbounds",
	Doc:  "check that decoded counts are bounds-checked before sizing allocations or loops",
	Run:  runDecoderBounds,
}

func runDecoderBounds(pass *Pass) error {
	sums := buildTaintSummaries(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			tw := &taintWalker{pass: pass, sums: sums, tainted: map[*types.Var]bool{}, report: true}
			tw.walkStmts(fd.Body.List)
		}
	}
	return nil
}

// taintSummaries records which same-package functions return
// tainted-unsanitized values at which result index.
type taintSummaries map[*types.Func]map[int]bool

func buildTaintSummaries(pass *Pass) taintSummaries {
	sums := taintSummaries{}
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnDecl{obj, fd})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			tw := &taintWalker{pass: pass, sums: sums, tainted: map[*types.Var]bool{}}
			tw.returns = map[int]bool{}
			tw.walkStmts(fn.decl.Body.List)
			for i := range tw.returns {
				if !sums[fn.obj][i] {
					if sums[fn.obj] == nil {
						sums[fn.obj] = map[int]bool{}
					}
					sums[fn.obj][i] = true
					changed = true
				}
			}
		}
	}
	return sums
}

// taintWalker performs a linear, source-order walk of one function body.
// Branches are walked in sequence rather than forked: a bound check on any
// earlier path sanitizes — the decoder idiom always checks-then-returns,
// so this stays precise where it matters while avoiding path explosion.
type taintWalker struct {
	pass    *Pass
	sums    taintSummaries
	tainted map[*types.Var]bool
	report  bool
	// returns collects tainted result indices when running in summary
	// mode (report == false).
	returns map[int]bool
}

func (w *taintWalker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.assignNames(vs.Names, vs.Values)
				}
			}
		}
	case *ast.ReturnStmt:
		for i, res := range s.Results {
			if w.returns != nil && w.exprTainted(res) {
				w.returns[i] = true
			}
			w.walkExpr(res)
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond) // comparisons here sanitize
		w.walkStmt(s.Body)
		w.walkStmt(s.Else)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		if s.Cond != nil && w.exprTainted(s.Cond) && !bodyHasEarlyExit(s.Body) {
			w.flag(s.Cond.Pos(), "loop bound derives from decoded input without a prior bound check and the body has no early exit; validate the count against remaining input first")
		}
		w.walkExpr(s.Cond)
		w.walkStmt(s.Body)
		w.walkStmt(s.Post)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		w.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		w.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.walkExpr(e)
		}
		w.walkStmts(s.Body)
	case *ast.SelectStmt:
		w.walkStmt(s.Body)
	case *ast.CommClause:
		w.walkStmt(s.Comm)
		w.walkStmts(s.Body)
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.DeferStmt:
		w.walkExpr(s.Call)
	case *ast.GoStmt:
		w.walkExpr(s.Call)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	}
}

func (w *taintWalker) walkAssign(a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		// n += k keeps n's taint; a tainted k taints n.
		for i, lhs := range a.Lhs {
			if i < len(a.Rhs) && w.exprTainted(a.Rhs[i]) {
				if v := identVar(w.pass.TypesInfo, lhs); v != nil {
					w.tainted[v] = true
				}
			}
			w.walkExpr(lhs)
		}
		for _, rhs := range a.Rhs {
			w.walkExpr(rhs)
		}
		return
	}

	// Multi-result call: v, n := binary.Uvarint(buf)
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		if call, ok := unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			w.walkExpr(call)
			taintedAt := w.callTaintedResults(call)
			for i, lhs := range a.Lhs {
				w.setVar(lhs, taintedAt[i])
			}
			return
		}
	}

	var exprs []ast.Expr
	for i := range a.Lhs {
		var rhs ast.Expr
		if i < len(a.Rhs) {
			rhs = a.Rhs[i]
		}
		exprs = append(exprs, rhs)
	}
	for _, rhs := range a.Rhs {
		w.walkExpr(rhs)
	}
	for i, lhs := range a.Lhs {
		w.setVar(lhs, exprs[i] != nil && w.exprTainted(exprs[i]))
	}
}

func (w *taintWalker) assignNames(names []*ast.Ident, values []ast.Expr) {
	if len(values) == 1 && len(names) > 1 {
		if call, ok := unparen(values[0]).(*ast.CallExpr); ok {
			w.walkExpr(call)
			taintedAt := w.callTaintedResults(call)
			for i, name := range names {
				w.setVar(name, taintedAt[i])
			}
			return
		}
	}
	for _, v := range values {
		w.walkExpr(v)
	}
	for i, name := range names {
		w.setVar(name, i < len(values) && w.exprTainted(values[i]))
	}
}

func (w *taintWalker) setVar(lhs ast.Expr, tainted bool) {
	v := identVar(w.pass.TypesInfo, lhs)
	if v == nil {
		return
	}
	if tainted {
		w.tainted[v] = true
	} else {
		delete(w.tainted, v)
	}
}

// walkExpr visits e for two effects: flagging tainted make() sites, and
// sanitizing every tainted variable mentioned in a comparison.
func (w *taintWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				w.sanitize(n)
				return false
			}
		case *ast.CallExpr:
			if builtinName(w.pass.TypesInfo, n) == "make" {
				for _, sz := range n.Args[1:] {
					if w.exprTainted(sz) {
						w.flag(n.Pos(), "allocation size derives from decoded input without a prior bound check; compare it against the remaining input length first")
						break
					}
				}
			}
		}
		return true
	})
}

// sanitize clears taint from every variable mentioned in a comparison:
// the code has confronted the value with a bound.
func (w *taintWalker) sanitize(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v := localVarOf(w.pass.TypesInfo, id); v != nil {
				delete(w.tainted, v)
			}
		}
		return true
	})
}

// exprTainted reports whether e mentions a tainted variable or a
// taint-returning call. Clamping through min/max yields a clean value.
func (w *taintWalker) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			switch builtinName(w.pass.TypesInfo, n) {
			case "min", "max", "len", "cap":
				return false // clamped or structural: clean
			}
			if w.callTaintedResults(n)[0] {
				found = true
				return false
			}
			return true
		case *ast.Ident:
			if v := localVarOf(w.pass.TypesInfo, n); v != nil && w.tainted[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callTaintedResults returns which result indices of call carry taint.
func (w *taintWalker) callTaintedResults(call *ast.CallExpr) map[int]bool {
	if isConversion(w.pass.TypesInfo, call) {
		if len(call.Args) == 1 && w.exprTainted(call.Args[0]) {
			return map[int]bool{0: true}
		}
		return nil
	}
	f := calleeFunc(w.pass.TypesInfo, call)
	if f == nil {
		return nil
	}
	if pkg := f.Pkg(); pkg != nil && pkg.Path() == "encoding/binary" {
		switch f.Name() {
		case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
			"Uint16", "Uint32", "Uint64":
			return map[int]bool{0: true}
		}
	}
	if m := w.sums[f]; len(m) > 0 {
		return m
	}
	return nil
}

func (w *taintWalker) flag(pos token.Pos, msg string) {
	if !w.report {
		return
	}
	if w.pass.HasMarker(pos, "lint:bounded") {
		return
	}
	w.pass.Reportf(pos, "%s (or annotate // lint:bounded)", msg)
}

// bodyHasEarlyExit reports whether the loop body can leave early — return,
// break, goto, or panic — which is what distinguishes a read-per-iteration
// decoder loop (fails fast on truncated input) from a pure accumulation
// loop spinning on a forged count.
func bodyHasEarlyExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return !found
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return localVarOf(info, id)
}
