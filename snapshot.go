package setdiscovery

import (
	"encoding/binary"
	"errors"
	"fmt"

	"setdiscovery/internal/dataset"
	"setdiscovery/internal/discovery"
	"setdiscovery/internal/strategy"
)

// Portable sessions: Snapshot serializes a suspended Session or Batch into a
// compact, versioned, self-describing byte string; RestoreSession /
// RestoreBatch reconstruct it — on this process or another one — so the
// discovery resumes exactly where it stopped: same remaining question
// sequence, same counters, same Result as if it had never been suspended
// (test-pinned across strategies, "don't know" answers and backtracking).
//
// A snapshot embeds the configuration the session was created under
// (strategy, lookahead, halting, backtracking), so the restoring side needs
// only the collection — it does not need to know how the session was
// configured. Host-local tuning (WithCacheBound, WithParallelism) is not
// part of a snapshot; pass it to RestoreSession/RestoreBatch instead.
// Restore-side options are applied after the embedded configuration and win
// on conflict.
//
// Envelope layout (everything after the fixed header is uvarint/length-
// prefixed):
//
//	"SDSS" | version (1) | kind | collection content fingerprint (16 bytes)
//	      | configuration (loop and batch kinds) | state payload
//
// Version 2 adds an optional memo-delta section — the selection-memo entries
// the session visited along its own discovery path, so a migrated session
// warms its destination's selection cache (see WithSharedSelection). The
// state payload becomes length-prefixed to delimit it from the delta:
//
//	"SDSS" | version (2) | kind | fingerprint | configuration
//	      | state length | state payload | memo delta
//
// Version 3 marks a group-testing session or batch (WithGroupStrategy): the
// configuration section is followed by a group section — strategy name plus
// the WithGroupConstraint entity-name pairs — and the state payload carries
// the suspended set-valued question. Group sessions bypass the selection
// memo, so a version-3 envelope never carries a memo delta:
//
//	"SDSS" | version (3) | kind | fingerprint | configuration
//	      | group configuration | state payload
//
// Writers emit the lowest sufficient version — 1 whenever there is no delta
// and no group configuration to carry — so snapshots of entity sessions stay
// byte-identical to earlier releases; decoders accept all three versions.
// The delta is advisory performance state: a restoring side validates and
// imports it into the collection's memo, but the restored session's
// behaviour never depends on it.
//
// The collection fingerprint guards against restoring over a different
// collection, where set indexes and entity IDs would silently mean something
// else; tree-session snapshots are additionally replay-verified against the
// tree they are restored onto. Snapshots are not authenticated: treat them
// like any other client-supplied state and restore only over the collection
// they were exported from.

// snapshotMagic identifies a setdiscovery snapshot; the trailing byte is the
// envelope version.
const snapshotMagic = "SDSS"

// snapshotVersion is the base envelope version; snapshotVersionDelta marks an
// envelope whose state payload is length-prefixed and followed by a
// selection-memo delta; snapshotVersionGroup marks a group-testing envelope
// whose configuration is followed by a group section. Decoders reject
// versions they do not know rather than guessing at layouts.
const (
	snapshotVersion      = 1
	snapshotVersionDelta = 2
	snapshotVersionGroup = 3
)

// SnapshotKind discriminates what a snapshot contains.
type SnapshotKind byte

const (
	// SnapshotSession is a strategy-loop Session (Collection.NewSession).
	SnapshotSession SnapshotKind = 1
	// SnapshotTreeSession is a prebuilt-tree walk (Tree.NewSession).
	SnapshotTreeSession SnapshotKind = 2
	// SnapshotBatch is a Batch of sessions (Collection.NewBatch).
	SnapshotBatch SnapshotKind = 3
)

// String names the kind for diagnostics and wire payloads.
func (k SnapshotKind) String() string {
	switch k {
	case SnapshotSession:
		return "session"
	case SnapshotTreeSession:
		return "tree-session"
	case SnapshotBatch:
		return "batch"
	default:
		return fmt.Sprintf("SnapshotKind(%d)", byte(k))
	}
}

// ErrBadSnapshot is wrapped by every snapshot decoding failure: foreign or
// corrupted bytes, an unknown version, or state that does not belong to the
// restoring collection or tree.
var ErrBadSnapshot = errors.New("setdiscovery: invalid snapshot")

// Snapshot serializes the session's suspended state. It is non-destructive
// — the session continues unaffected — so state can be exported at every
// suspension point (a serving layer does it per round-trip). Restore with
// Collection.RestoreSession, or Tree.RestoreSession for tree-walk sessions.
func (s *Session) Snapshot() ([]byte, error) {
	switch core := s.s.(type) {
	case *discovery.Session:
		// Group sessions need the version-3 envelope: restoring one requires
		// the group section to mint the right strategy. They bypass the
		// selection memo, so there is never a delta to carry alongside.
		if s.cfg.groupStrategy != "" {
			w := newEnvelopeVersion(snapshotVersionGroup, SnapshotSession, s.c.c.ContentFingerprint())
			w.config(s.cfg)
			w.groupConfig(s.cfg)
			return append(w.buf, core.EncodeState()...), nil
		}
		// Sessions that visited shared-selection states carry those memo
		// entries along as a version-2 delta section; others emit the
		// byte-identical version-1 envelope of earlier releases.
		delta, n := core.AppendMemoDelta(nil)
		if n == 0 {
			w := newEnvelope(SnapshotSession, s.c.c.ContentFingerprint())
			w.config(s.cfg)
			return append(w.buf, core.EncodeState()...), nil
		}
		w := newEnvelopeVersion(snapshotVersionDelta, SnapshotSession, s.c.c.ContentFingerprint())
		w.config(s.cfg)
		state := core.EncodeState()
		w.buf = binary.AppendUvarint(w.buf, uint64(len(state)))
		w.buf = append(w.buf, state...)
		return append(w.buf, delta...), nil
	case *discovery.TreeSession:
		w := newEnvelope(SnapshotTreeSession, s.c.c.ContentFingerprint())
		return append(w.buf, core.EncodeState()...), nil
	default:
		return nil, fmt.Errorf("setdiscovery: unsupported session core %T", s.s)
	}
}

// Snapshot serializes the whole batch — every member's suspended state plus
// the scheduler's amortisation counters. Restore with
// Collection.RestoreBatch.
func (b *Batch) Snapshot() ([]byte, error) {
	version := byte(snapshotVersion)
	if b.cfg.groupStrategy != "" {
		version = snapshotVersionGroup
	}
	w := newEnvelopeVersion(version, SnapshotBatch, b.c.c.ContentFingerprint())
	w.config(b.cfg)
	if b.cfg.groupStrategy != "" {
		w.groupConfig(b.cfg)
	}
	return append(w.buf, b.b.EncodeState()...), nil
}

// RestoreSession reconstructs a session from Snapshot output, bound to this
// collection — which must be the one the snapshot was exported from (guarded
// by a content fingerprint). opts are applied on top of the snapshot's
// embedded configuration; use them for host-local tuning such as
// WithCacheBound. Tree-session snapshots must be restored with
// Tree.RestoreSession instead, batches with RestoreBatch.
func (c *Collection) RestoreSession(data []byte, opts ...Option) (*Session, error) {
	cfg, payload, delta, err := c.openEnvelope(data, SnapshotSession, opts)
	if err != nil {
		return nil, err
	}
	o, err := c.engineOptions(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	s, err := discovery.DecodeSession(c.c, o, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	// The delta is applied after the state decoded: a snapshot that fails to
	// restore must not leave half its cache entries behind.
	if err := c.applyMemoDelta(cfg, delta); err != nil {
		return nil, err
	}
	return &Session{c: c, s: s, cfg: cfg}, nil
}

// RestoreSession reconstructs a tree-walk session from Snapshot output over
// this tree. The snapshot's path is replayed and verified question by
// question, so state exported from a structurally different tree (or a
// different collection) is rejected rather than silently walking to a wrong
// leaf.
func (t *Tree) RestoreSession(data []byte) (*Session, error) {
	cfg, payload, delta, err := t.c.openEnvelope(data, SnapshotTreeSession, nil)
	if err != nil {
		return nil, err
	}
	s, err := discovery.DecodeTreeSession(t.c.c, t.t, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if err := t.c.applyMemoDelta(cfg, delta); err != nil {
		return nil, err
	}
	return &Session{c: t.c, s: s, tree: t}, nil
}

// RestoreBatch reconstructs a batch from Batch.Snapshot output, bound to
// this collection. Members resume against a fresh shared scheduler and keep
// amortising exactly as before the suspension.
func (c *Collection) RestoreBatch(data []byte, opts ...Option) (*Batch, error) {
	cfg, payload, delta, err := c.openEnvelope(data, SnapshotBatch, opts)
	if err != nil {
		return nil, err
	}
	o := discoveryOptions(cfg, nil)
	var f strategy.Factory
	if cfg.groupStrategy != "" {
		gf, err := c.groupFactory(cfg)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
		o.Group = gf.New()
	} else {
		if f, err = c.factory(cfg); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
	}
	b, err := discovery.DecodeBatch(c.c, f, o, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if err := c.applyMemoDelta(cfg, delta); err != nil {
		return nil, err
	}
	return &Batch{c: c, b: b, cfg: cfg}, nil
}

// SnapshotInfo describes a snapshot without restoring it — what kind of
// resource it holds — so a serving layer can route the bytes to the right
// restore call.
type SnapshotInfo struct {
	Kind SnapshotKind
}

// ReadSnapshotInfo peeks at a snapshot's envelope header.
func ReadSnapshotInfo(data []byte) (SnapshotInfo, error) {
	_, kind, _, _, err := parseHeader(data)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Kind: kind}, nil
}

// discoveryOptions maps the behaviour-relevant half of a config to engine
// options (the other half — strategy selection — travels through the
// factory; strat stays nil for batches, which mint their own shared
// instance).
func discoveryOptions(cfg config, strat strategy.Strategy) discovery.Options {
	return discovery.Options{
		Strategy:      strat,
		MaxQuestions:  cfg.maxQuestions,
		BatchSize:     cfg.batchSize,
		Backtrack:     cfg.backtrack,
		ConfirmTarget: cfg.confirm,
	}
}

// envelopeWriter builds the snapshot header + configuration section.
type envelopeWriter struct {
	buf []byte
}

func newEnvelope(kind SnapshotKind, fp dataset.Fingerprint) *envelopeWriter {
	return newEnvelopeVersion(snapshotVersion, kind, fp)
}

func newEnvelopeVersion(version byte, kind SnapshotKind, fp dataset.Fingerprint) *envelopeWriter {
	w := &envelopeWriter{buf: make([]byte, 0, 64)}
	w.buf = append(w.buf, snapshotMagic...)
	w.buf = append(w.buf, version, byte(kind))
	w.buf = binary.BigEndian.AppendUint64(w.buf, fp.Hi)
	w.buf = binary.BigEndian.AppendUint64(w.buf, fp.Lo)
	return w
}

// config appends the behaviour-relevant configuration: everything that
// decides which questions get asked or when the session halts. Host-local
// tuning (cache bound, build parallelism) is deliberately absent.
func (w *envelopeWriter) config(cfg config) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(cfg.strategyName)))
	w.buf = append(w.buf, cfg.strategyName...)
	var metric byte
	if cfg.metric == Height {
		metric = 1
	}
	w.buf = append(w.buf, metric)
	for _, v := range []int{cfg.k, cfg.q, cfg.maxQuestions, cfg.batchSize} {
		w.buf = binary.AppendUvarint(w.buf, uint64(v))
	}
	var flags byte
	if cfg.backtrack {
		flags |= 1
	}
	if cfg.confirm {
		flags |= 2
	}
	w.buf = append(w.buf, flags)
}

// groupConfig appends the version-3 group section: the group strategy's name
// and the constraint entity-name pairs it was configured with. Constraint
// names (not IDs) travel so the section stays meaningful to a human and the
// restoring side re-resolves them against its own dictionary.
func (w *envelopeWriter) groupConfig(cfg config) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(cfg.groupStrategy)))
	w.buf = append(w.buf, cfg.groupStrategy...)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(cfg.groupConstraints)))
	for _, pair := range cfg.groupConstraints {
		for _, name := range pair {
			w.buf = binary.AppendUvarint(w.buf, uint64(len(name)))
			w.buf = append(w.buf, name...)
		}
	}
}

func badSnapshot(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
}

// parseHeader validates magic/version and returns the version, kind,
// fingerprint and the bytes after the fixed header.
func parseHeader(data []byte) (byte, SnapshotKind, dataset.Fingerprint, []byte, error) {
	const headerLen = len(snapshotMagic) + 2 + 16
	if len(data) < headerLen {
		return 0, 0, dataset.Fingerprint{}, nil, badSnapshot("truncated header")
	}
	if string(data[:4]) != snapshotMagic {
		return 0, 0, dataset.Fingerprint{}, nil, badSnapshot("bad magic %q", data[:4])
	}
	version := data[4]
	if version != snapshotVersion && version != snapshotVersionDelta && version != snapshotVersionGroup {
		return 0, 0, dataset.Fingerprint{}, nil, badSnapshot("unknown snapshot version %d", version)
	}
	kind := SnapshotKind(data[5])
	if kind != SnapshotSession && kind != SnapshotTreeSession && kind != SnapshotBatch {
		return 0, 0, dataset.Fingerprint{}, nil, badSnapshot("unknown snapshot kind %d", data[5])
	}
	fp := dataset.Fingerprint{
		Hi: binary.BigEndian.Uint64(data[6:14]),
		Lo: binary.BigEndian.Uint64(data[14:22]),
	}
	return version, kind, fp, data[headerLen:], nil
}

// openEnvelope parses and validates the header against this collection and
// the expected kind, decodes the embedded configuration (loop and batch
// kinds) and applies the caller's restore-side options on top. It returns the
// final configuration, the state payload and — for version-2 envelopes — the
// memo-delta section (nil for version 1).
func (c *Collection) openEnvelope(data []byte, want SnapshotKind, opts []Option) (config, []byte, []byte, error) {
	cfg := defaultConfig()
	version, kind, fp, rest, err := parseHeader(data)
	if err != nil {
		return cfg, nil, nil, err
	}
	if kind != want {
		hint := ""
		switch kind {
		case SnapshotTreeSession:
			hint = " (restore it with Tree.RestoreSession)"
		case SnapshotSession:
			hint = " (restore it with Collection.RestoreSession)"
		case SnapshotBatch:
			hint = " (restore it with Collection.RestoreBatch)"
		}
		return cfg, nil, nil, badSnapshot("snapshot holds a %s, not a %s%s", kind, want, hint)
	}
	if got := c.c.ContentFingerprint(); got != fp {
		return cfg, nil, nil, badSnapshot("snapshot was exported from a different collection")
	}
	if kind != SnapshotTreeSession {
		if rest, err = readConfig(&cfg, rest); err != nil {
			return cfg, nil, nil, err
		}
		if version == snapshotVersionGroup {
			if rest, err = readGroupConfig(&cfg, rest); err != nil {
				return cfg, nil, nil, err
			}
		}
	} else if version == snapshotVersionGroup {
		return cfg, nil, nil, badSnapshot("tree sessions have no group mode")
	}
	for _, o := range opts {
		o(&cfg)
	}
	var delta []byte
	if version == snapshotVersionDelta {
		stateLen, n := binary.Uvarint(rest)
		if n <= 0 || stateLen > uint64(len(rest)-n) {
			return cfg, nil, nil, badSnapshot("truncated state length")
		}
		rest, delta = rest[n:n+int(stateLen)], rest[n+int(stateLen):]
	}
	return cfg, rest, delta, nil
}

// applyMemoDelta validates a snapshot's memo-delta section and imports it
// into the collection's selection memo. With shared selection disabled on the
// restoring side the entries are still fully validated — a corrupt delta must
// fail the restore either way — but land in a throwaway memo instead.
func (c *Collection) applyMemoDelta(cfg config, delta []byte) error {
	if delta == nil {
		return nil
	}
	m := discovery.NewSelectionMemo(1)
	if cfg.sharedSelection {
		m = c.selectionMemo(cfg.cacheBound)
	}
	if _, err := discovery.DecodeMemoDelta(c.c, m, delta); err != nil {
		return fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	return nil
}

// readConfig decodes the configuration section into cfg, returning the
// remaining payload.
func readConfig(cfg *config, data []byte) ([]byte, error) {
	nameLen, n := binary.Uvarint(data)
	if n <= 0 || nameLen > uint64(len(data)-n) {
		return nil, badSnapshot("truncated configuration")
	}
	data = data[n:]
	cfg.strategyName = string(data[:nameLen])
	data = data[nameLen:]
	if len(data) == 0 {
		return nil, badSnapshot("truncated configuration")
	}
	switch data[0] {
	case 0:
		cfg.metric = AverageDepth
	case 1:
		cfg.metric = Height
	default:
		return nil, badSnapshot("unknown metric %d", data[0])
	}
	data = data[1:]
	// Snapshot input is untrusted: parameters feed straight into strategy
	// construction (which rejects k < 1 by panicking — a programmer error on
	// the normal path) and into lookahead whose cost grows with k, so both
	// floor and ceiling are enforced here.
	for _, f := range []struct {
		dst      *int
		min, max int
	}{
		{&cfg.k, 1, 64},
		{&cfg.q, 1, 1 << 20},
		{&cfg.maxQuestions, 0, 1 << 20},
		{&cfg.batchSize, 0, 1 << 20},
	} {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, badSnapshot("truncated configuration")
		}
		if v < uint64(f.min) || v > uint64(f.max) {
			return nil, badSnapshot("configuration value %d out of range [%d, %d]", v, f.min, f.max)
		}
		*f.dst = int(v)
		data = data[n:]
	}
	if len(data) == 0 {
		return nil, badSnapshot("truncated configuration")
	}
	if data[0] > 3 {
		return nil, badSnapshot("unknown configuration flags %#x", data[0])
	}
	cfg.backtrack = data[0]&1 != 0
	cfg.confirm = data[0]&2 != 0
	return data[1:], nil
}

// readGroupConfig decodes the version-3 group section. Strategy and entity
// names are re-validated downstream (the group factory rejects unknown
// strategies and constraint entities absent from the collection); here only
// the framing and untrusted-input bounds are checked.
func readGroupConfig(cfg *config, data []byte) ([]byte, error) {
	readString := func(what string, max uint64) (string, error) {
		n, sz := binary.Uvarint(data)
		if sz <= 0 || n > max || n > uint64(len(data)-sz) {
			return "", badSnapshot("truncated group %s", what)
		}
		s := string(data[sz : sz+int(n)])
		data = data[sz+int(n):]
		return s, nil
	}
	name, err := readString("strategy", 64)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, badSnapshot("empty group strategy in a group envelope")
	}
	cfg.groupStrategy = name
	count, sz := binary.Uvarint(data)
	if sz <= 0 || count > 1<<16 {
		return nil, badSnapshot("truncated group constraints")
	}
	data = data[sz:]
	cfg.groupConstraints = nil
	for i := uint64(0); i < count; i++ {
		ifName, err := readString("constraint", 1<<10)
		if err != nil {
			return nil, err
		}
		thenName, err := readString("constraint", 1<<10)
		if err != nil {
			return nil, err
		}
		cfg.groupConstraints = append(cfg.groupConstraints, [2]string{ifName, thenName})
	}
	return data, nil
}
