package setdiscovery

import (
	"testing"

	"setdiscovery/internal/strategy"
)

// TestWithCacheBoundSameResults: a bounded cache changes memory behaviour,
// never selections — discovery under a tight bound finds every target with
// the identical question count.
func TestWithCacheBoundSameResults(t *testing.T) {
	plain := paperCollection(t)
	bounded := paperCollection(t)
	for name := range paperSets() {
		po, err := plain.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		bo, err := bounded.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := plain.Discover(nil, po, WithK(2))
		if err != nil {
			t.Fatal(err)
		}
		bres, err := bounded.Discover(nil, bo, WithK(2), WithCacheBound(64))
		if err != nil {
			t.Fatal(err)
		}
		if pres.Target != bres.Target || pres.Questions != bres.Questions {
			t.Fatalf("target %s: unbounded (%s, %d questions) vs bounded (%s, %d questions)",
				name, pres.Target, pres.Questions, bres.Target, bres.Questions)
		}
	}
}

// TestWithCacheBoundFactoryKeying: the bound is part of the factory cache
// key — bounded and unbounded configurations must not share a factory, and
// equal bounds must.
func TestWithCacheBoundFactoryKeying(t *testing.T) {
	c := paperCollection(t)
	get := func(opts ...Option) strategy.Factory {
		cfg := defaultConfig()
		for _, o := range opts {
			o(&cfg)
		}
		f, err := c.factory(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	unbounded := get()
	bounded := get(WithCacheBound(128))
	if unbounded == bounded {
		t.Fatal("bounded and unbounded configs share one factory")
	}
	if again := get(WithCacheBound(128)); again != bounded {
		t.Fatal("equal bounded configs do not share a factory")
	}
	if again := get(); again != unbounded {
		t.Fatal("equal unbounded configs do not share a factory")
	}
	klp, ok := bounded.(*strategy.KLP)
	if !ok {
		t.Fatalf("default factory is %T, want *strategy.KLP", bounded)
	}
	if klp.CacheStats().Entries > 128 {
		t.Fatalf("bounded factory cache exceeds its bound")
	}
}

// TestWithCacheBoundBuildTree: tree construction under a tight bound stays
// byte-equal in shape (cost and depths) to the unbounded build.
func TestWithCacheBoundBuildTree(t *testing.T) {
	plain := paperCollection(t)
	bounded := paperCollection(t)
	pt, err := plain.BuildTree(WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := bounded.BuildTree(WithK(2), WithCacheBound(64))
	if err != nil {
		t.Fatal(err)
	}
	if pt.AvgDepth() != bt.AvgDepth() || pt.Height() != bt.Height() {
		t.Fatalf("bounded build differs: avg %.3f/%.3f height %d/%d",
			pt.AvgDepth(), bt.AvgDepth(), pt.Height(), bt.Height())
	}
	if pt.Render() != bt.Render() {
		t.Fatal("bounded build renders a different tree")
	}
}
