package setdiscovery

import (
	"sync"
	"testing"
)

// TestConcurrentSessionsSharedCollection drives N suspended Sessions over
// one shared Collection from concurrent goroutines, each goroutine
// interleaving several sessions question-by-question the way a server
// handler pool does. Sessions with equal options share a lookahead cache.
// Run with -race; CI does.
func TestConcurrentSessionsSharedCollection(t *testing.T) {
	c, err := NewCollection(syntheticSets(64))
	if err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	const (
		workers            = 8
		sessionsPerWorker  = 4
		expectedMaxRetries = 1024 // generous bound so a livelock fails fast
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			type live struct {
				s      *Session
				oracle Oracle
				target string
			}
			// Open all of this worker's sessions up front...
			var open []live
			for i := 0; i < sessionsPerWorker; i++ {
				target := names[(g*sessionsPerWorker+i*13)%len(names)]
				oracle, err := c.TargetOracle(target)
				if err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
				opts := []Option{WithK(2)}
				if (g+i)%3 == 2 {
					opts = []Option{WithStrategy("klplve"), WithK(3), WithQ(5)}
				}
				s, err := c.NewSession(nil, opts...)
				if err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
				open = append(open, live{s, oracle, target})
			}
			// ...then advance them round-robin, one answer per turn, so the
			// sessions interleave within the goroutine while the goroutines
			// interleave on the shared caches.
			for round := 0; len(open) > 0; round++ {
				if round > expectedMaxRetries {
					t.Errorf("worker %d: sessions did not converge", g)
					return
				}
				next := open[:0]
				for _, l := range open {
					q, done := l.s.Next()
					if done {
						res, err := l.s.Result()
						if err != nil {
							t.Errorf("worker %d: %v", g, err)
							continue
						}
						if res.Target != l.target {
							t.Errorf("worker %d: discovered %q, want %q", g, res.Target, l.target)
						}
						continue
					}
					if err := l.s.Answer(l.oracle.Answer(q.Entity)); err != nil {
						t.Errorf("worker %d: %v", g, err)
						continue
					}
					next = append(next, l)
				}
				open = next
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentTreeSessionsSharedTree walks one shared prebuilt Tree from
// many concurrent sessions, mixed with strategy-loop sessions on the same
// collection.
func TestConcurrentTreeSessionsSharedTree(t *testing.T) {
	c, err := NewCollection(syntheticSets(64))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.BuildTree(WithK(2), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	const sessions = 16
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			target := names[(g*7)%len(names)]
			oracle, err := c.TargetOracle(target)
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			var s *Session
			if g%2 == 0 {
				s = tr.NewSession()
			} else {
				s, err = c.NewSession(nil)
				if err != nil {
					t.Errorf("session %d: %v", g, err)
					return
				}
			}
			for {
				q, done := s.Next()
				if done {
					break
				}
				if err := s.Answer(oracle.Answer(q.Entity)); err != nil {
					t.Errorf("session %d: %v", g, err)
					return
				}
			}
			res, err := s.Result()
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			if res.Target != target {
				t.Errorf("session %d: discovered %q, want %q", g, res.Target, target)
			}
		}(g)
	}
	wg.Wait()
}
