package setdiscovery

import (
	"errors"
	"testing"
)

// driveBatchRounds answers every live member once per round from its
// oracle until the whole batch is done, using the round-based protocol a
// serving layer would use (AnswerMember + EndRound).
func driveBatchRounds(t *testing.T, b *Batch, oracles []Oracle) {
	t.Helper()
	for !b.Done() {
		stepped := false
		for i := 0; i < b.Len(); i++ {
			q, done := b.Question(i)
			if done {
				continue
			}
			a := No
			if q.IsConfirm() {
				if c, ok := oracles[i].(Confirmer); ok && c.Confirm(q.Confirm) {
					a = Yes
				}
			} else {
				a = oracles[i].Answer(q.Entity)
			}
			if err := b.AnswerMember(i, a); err != nil {
				t.Fatalf("member %d: %v", i, err)
			}
			stepped = true
		}
		b.EndRound()
		if !stepped {
			t.Fatal("batch not done but no member had a pending question")
		}
	}
}

// TestBatchMatchesSessions pins the public batch to the public sessions: a
// batch with one member per set of the paper collection asks every member
// exactly the questions its solo Session twin asks and reaches identical
// results, while sharing a nonzero amount of selection work.
func TestBatchMatchesSessions(t *testing.T) {
	c := paperCollection(t)
	names := c.Names()
	seeds := make([]Seed, len(names))
	b, err := c.NewBatch(seeds)
	if err != nil {
		t.Fatal(err)
	}
	oracles := make([]Oracle, len(names))
	for i, name := range names {
		o, err := c.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = o
	}
	driveBatchRounds(t, b, oracles)
	for i, name := range names {
		res, err := b.Result(i)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if res.Target != name {
			t.Fatalf("member %d discovered %q, want %q", i, res.Target, name)
		}
		// Solo twin: same options, same oracle.
		s, err := c.NewSession(nil)
		if err != nil {
			t.Fatal(err)
		}
		var asked []string
		for {
			q, done := s.Next()
			if done {
				break
			}
			asked = append(asked, q.Entity)
			if err := s.Answer(oracles[i].Answer(q.Entity)); err != nil {
				t.Fatal(err)
			}
		}
		soloRes, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		if soloRes.Target != res.Target || soloRes.Questions != res.Questions ||
			soloRes.Interactions != res.Interactions {
			t.Fatalf("member %d diverged from solo session: batch %+v vs solo %+v",
				i, res, soloRes)
		}
	}
	if st := b.Stats(); st.SelectionsShared == 0 {
		t.Errorf("no selections were shared: %+v", st)
	}
}

// TestBatchIdenticalSeedsShareAllWork: members with identical seeds and
// identical answers cost one selection per round in total.
func TestBatchIdenticalSeedsShareAllWork(t *testing.T) {
	c := paperCollection(t)
	name := c.Names()[0]
	const n = 16
	b, err := c.NewBatch(make([]Seed, n), WithStrategy("most-even"))
	if err != nil {
		t.Fatal(err)
	}
	o, err := c.TargetOracle(name)
	if err != nil {
		t.Fatal(err)
	}
	oracles := make([]Oracle, n)
	for i := range oracles {
		oracles[i] = o
	}
	driveBatchRounds(t, b, oracles)
	st := b.Stats()
	if st.Selections == 0 {
		t.Fatal("no selections computed")
	}
	if want := int64(n-1) * st.Selections; st.SelectionsShared != want {
		t.Fatalf("SelectionsShared = %d, want %d ((n-1) x Selections=%d)",
			st.SelectionsShared, want, st.Selections)
	}
	for i := 0; i < n; i++ {
		res, err := b.Result(i)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if res.Target != name {
			t.Fatalf("member %d discovered %q, want %q", i, res.Target, name)
		}
	}
}

// TestBatchSeedsAndErrors covers the construction and misuse contract:
// per-member seeds narrow the start state, unknown seed entities fail
// construction, out-of-range and already-done members fail Answer.
func TestBatchSeedsAndErrors(t *testing.T) {
	c := paperCollection(t)
	if _, err := c.NewBatch(nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	if _, err := c.NewBatch([]Seed{{Initial: []string{"no-such-entity"}}}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("unknown seed entity: got %v, want ErrNoCandidates", err)
	}
	if _, err := c.NewBatch([]Seed{{}}, WithStrategy("bogus")); err == nil {
		t.Fatal("unknown strategy accepted")
	}

	b, err := c.NewBatch([]Seed{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if err := b.Answer(MemberAnswer{Member: 5, Answer: Yes}); err == nil {
		t.Fatal("out-of-range member accepted")
	}
	name := c.Names()[0]
	o, err := c.TargetOracle(name)
	if err != nil {
		t.Fatal(err)
	}
	driveBatchRounds(t, b, []Oracle{o, o})
	if !b.Done() || !b.MemberDone(0) {
		t.Fatal("batch not done after driving all members")
	}
	if err := b.Answer(MemberAnswer{Member: 0, Answer: Yes}); err == nil {
		t.Fatal("answering a finished member accepted")
	}
	if q, done := b.Question(0); !done || q.Entity != "" {
		t.Fatalf("finished member still has question %+v", q)
	}
	if b.MemberQuestions(0) == 0 {
		t.Fatal("member question count not maintained")
	}
}

// TestBatchAccessorBounds pins the misuse contract: read accessors panic
// on out-of-range members (like slice indexing), the answering path errors.
func TestBatchAccessorBounds(t *testing.T) {
	c := paperCollection(t)
	b, err := c.NewBatch([]Seed{{}})
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"Question":        func() { b.Question(1) },
		"MemberDone":      func() { b.MemberDone(-1) },
		"MemberQuestions": func() { b.MemberQuestions(7) },
		"Result":          func() { b.Result(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with out-of-range member did not panic", name)
				}
			}()
			f()
		}()
	}
	if err := b.AnswerMember(1, Yes); err == nil {
		t.Error("AnswerMember with out-of-range member did not error")
	}
}
