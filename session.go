package setdiscovery

import (
	"setdiscovery/internal/dataset"
	"setdiscovery/internal/discovery"
	"setdiscovery/internal/grouptest"
)

// Question is the pending interaction of a Session: a membership question
// about Entity ("is Entity in your set?"), a set-valued question about
// Subset under Semantics (WithGroupStrategy sessions), or — for sessions
// with WithBacktracking, once a single candidate remains — a confirmation
// question about the set named Confirm ("is Confirm your set?"). Exactly one
// of Entity, Subset and Confirm is non-empty.
type Question struct {
	Entity  string
	Confirm string

	// Subset and Semantics carry a group session's set-valued question:
	// Semantics is "intersects" ("does your set share at least one of
	// Subset?") or "subset-of" ("is every member of Subset in your set?").
	Subset    []string
	Semantics string
}

// IsConfirm reports whether the question asks for confirmation of a
// candidate set rather than entity membership.
func (q Question) IsConfirm() bool { return q.Confirm != "" }

// IsSubset reports whether the question is set-valued (a group-testing
// question about Subset) rather than about a single entity.
func (q Question) IsSubset() bool { return len(q.Subset) > 0 }

// sessionCore is the step-wise state machine behind a Session — the
// interactive loop (discovery.Session) or a prebuilt-tree walk
// (discovery.TreeSession).
type sessionCore interface {
	Next() (dataset.Entity, bool)
	PendingConfirm() (*dataset.Set, bool)
	Answer(discovery.Answer) error
	Result() (*discovery.Result, error)
	Questions() int
	Done() bool
}

// Session is a resumable discovery: where Discover drives an Oracle
// callback to completion in one call, a Session suspends at every question
// so the answer can arrive later — from another goroutine, an HTTP
// round-trip, a queued message. The protocol is
//
//	s, _ := c.NewSession([]string{"fever"})
//	for {
//	    q, done := s.Next()
//	    if done { break }
//	    s.Answer(answerFor(q))
//	}
//	res, err := s.Result()
//
// A Session asks exactly the same questions as Discover with the same
// collection, options and answers (Discover is implemented on the same
// machinery).
//
// One Session serves one user: its methods must not be called concurrently.
// Any number of Sessions may run concurrently over a shared Collection or
// Tree — sessions with equal options share the collection's lookahead
// caches, so simultaneous users amortise each other's selection work.
type Session struct {
	c *Collection
	s sessionCore

	// cfg is the configuration the session was created under; Snapshot
	// embeds it so RestoreSession can rebuild identical options. Unused (and
	// meaningless) for tree-walk sessions, which instead carry their tree.
	cfg  config
	tree *Tree // non-nil for sessions created by Tree.NewSession
}

// NewSession starts a resumable discovery session over the collection,
// suspended before its first question. The options are those of Discover;
// with WithBacktracking the session asks a final confirmation question and
// recovers from rejections by revisiting earlier answers (§6). Unknown
// initial examples yield ErrNoCandidates.
func (c *Collection) NewSession(initial []string, opts ...Option) (*Session, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	o, err := c.engineOptions(cfg)
	if err != nil {
		return nil, err
	}
	init, err := c.lookupInitial(initial)
	if err != nil {
		return nil, err
	}
	s, err := discovery.NewSession(c.c, init, o)
	if err != nil {
		return nil, err
	}
	// A session that is dead on arrival (no candidate contains the
	// examples) surfaces its error at creation rather than as a one-question
	// corpse.
	if s.Done() {
		if _, err := s.Result(); err != nil {
			return nil, err
		}
	}
	return &Session{c: c, s: s, cfg: cfg}, nil
}

// NewSession starts a resumable walk down the prebuilt tree, suspended
// before the root question. Tree sessions have constant per-question cost —
// the question sequence is frozen in the tree — which makes them the
// cheapest kind to serve at scale. A "don't know" answer ends the walk with
// the sets below the current node as candidates.
func (t *Tree) NewSession() *Session {
	return &Session{c: t.c, s: discovery.NewTreeSession(t.c.c, t.t), tree: t}
}

// Next returns the pending question; done is true once the session has
// finished. Next is idempotent — it keeps returning the same question until
// Answer is called, so a client may safely re-fetch it.
func (s *Session) Next() (Question, bool) {
	if set, ok := s.s.PendingConfirm(); ok {
		return Question{Confirm: set.Name}, false
	}
	if core, ok := s.s.(*discovery.Session); ok {
		if members, sem, ok := core.PendingSubset(); ok {
			return subsetQuestion(s.c.c, members, sem), false
		}
	}
	e, done := s.s.Next()
	if done {
		return Question{}, true
	}
	return Question{Entity: s.c.c.EntityName(e)}, false
}

// subsetQuestion renders a pending set-valued question with entity names.
func subsetQuestion(c *dataset.Collection, members []dataset.Entity, sem grouptest.Semantics) Question {
	names := make([]string, len(members))
	for i, e := range members {
		names[i] = c.EntityName(e)
	}
	return Question{Subset: names, Semantics: sem.String()}
}

// Answer applies the reply to the pending question and advances the session
// to its next question (or completion). For a confirmation question, Yes
// accepts the candidate and anything else rejects it, triggering
// backtracking. Answering a finished session is an error.
func (s *Session) Answer(a Answer) error { return s.s.Answer(a) }

// Done reports whether the session has finished.
func (s *Session) Done() bool { return s.s.Done() }

// Questions returns the number of questions counted so far (membership
// answers received, plus any pending confirmation). Unlike Result it does
// not materialise the candidate list or detach the live candidate set from
// the session's subset recycling, so it is cheap on every round-trip, and
// it keeps counting even when the session ended in a terminal error.
func (s *Session) Questions() int { return s.s.Questions() }

// Result returns the session outcome: final once Done, otherwise a progress
// snapshot (candidates narrowed so far, questions asked, empty Target). A
// session that ended in contradiction with backtracking off or exhausted
// returns ErrContradiction.
func (s *Session) Result() (*Result, error) {
	res, err := s.s.Result()
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}
