package setdiscovery

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// paperSets is the Fig. 1 running example.
func paperSets() map[string][]string {
	return map[string][]string{
		"S1": {"a", "b", "c", "d"},
		"S2": {"a", "d", "e"},
		"S3": {"a", "b", "c", "d", "f"},
		"S4": {"a", "b", "c", "g", "h"},
		"S5": {"a", "b", "h", "i"},
		"S6": {"a", "b", "j", "k"},
		"S7": {"a", "b", "g"},
	}
}

func paperCollection(t *testing.T) *Collection {
	t.Helper()
	c, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCollection(t *testing.T) {
	c := paperCollection(t)
	if c.Len() != 7 {
		t.Fatalf("Len = %d", c.Len())
	}
	names := c.Names()
	if names[0] != "S1" || names[6] != "S7" {
		t.Errorf("Names = %v (sorted insert expected)", names)
	}
	elems := c.Elements("S2")
	if len(elems) != 3 {
		t.Errorf("Elements(S2) = %v", elems)
	}
	if c.Elements("nope") != nil {
		t.Error("Elements of unknown set non-nil")
	}
}

func TestNewCollectionErrors(t *testing.T) {
	if _, err := NewCollection(nil); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := NewCollection(map[string][]string{"A": {"x"}, "B": {"x"}}); err == nil {
		t.Error("duplicate sets accepted")
	}
	if _, err := NewCollection(map[string][]string{"A": {}}); err == nil {
		t.Error("empty set accepted")
	}
}

func TestCollectionDeterministicAcrossMapOrder(t *testing.T) {
	// Maps iterate randomly; NewCollection must still be deterministic.
	a := paperCollection(t)
	b := paperCollection(t)
	ta, err := a.BuildTree()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.BuildTree()
	if err != nil {
		t.Fatal(err)
	}
	if ta.Render() != tb.Render() {
		t.Error("same input maps produced different trees")
	}
}

func TestBuildTreeDefault(t *testing.T) {
	c := paperCollection(t)
	tr, err := c.BuildTree()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 || tr.AvgDepth() < 2.857-1e-9 {
		t.Errorf("tree below information-theoretic bounds: H=%d AD=%f", tr.Height(), tr.AvgDepth())
	}
	if q := tr.QuestionsFor("S2"); q < 1 || q > tr.Height() {
		t.Errorf("QuestionsFor(S2) = %d", q)
	}
	if tr.QuestionsFor("nope") != -1 {
		t.Error("QuestionsFor unknown set != -1")
	}
}

func TestBuildTreeOptimalWithLargeK(t *testing.T) {
	c := paperCollection(t)
	tr, err := c.BuildTree(WithStrategy("klp"), WithK(3), WithMetric(AverageDepth))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.AvgDepth(); got != 20.0/7 {
		t.Errorf("AvgDepth = %f, want 2.857 (Fig 2a optimum)", got)
	}
}

func TestBuildTreeStrategies(t *testing.T) {
	c := paperCollection(t)
	for _, name := range []string{"infogain", "most-even", "indg", "lb1", "klple", "klplve", "gaink"} {
		tr, err := c.BuildTree(WithStrategy(name), WithK(2), WithQ(5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Height() < 3 {
			t.Errorf("%s: height %d below ⌈log2 7⌉", name, tr.Height())
		}
	}
	if _, err := c.BuildTree(WithStrategy("bogus")); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestDiscoverFindsTarget(t *testing.T) {
	c := paperCollection(t)
	for _, target := range c.Names() {
		oracle, err := c.TargetOracle(target)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Discover(nil, oracle)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if res.Target != target {
			t.Errorf("looking for %s, found %q", target, res.Target)
		}
		if res.Questions < 1 || res.Questions > 6 {
			t.Errorf("%s: %d questions", target, res.Questions)
		}
	}
}

func TestDiscoverWithInitialExamples(t *testing.T) {
	c := paperCollection(t)
	oracle, _ := c.TargetOracle("S3")
	res, err := c.Discover([]string{"b", "c"}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != "S3" {
		t.Fatalf("found %q", res.Target)
	}
	if res.Questions > 2 {
		t.Errorf("%d questions for 3 candidates", res.Questions)
	}
}

func TestDiscoverUnknownInitialEntity(t *testing.T) {
	c := paperCollection(t)
	oracle, _ := c.TargetOracle("S1")
	_, err := c.Discover([]string{"zzz"}, oracle)
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestDiscoverMaxQuestions(t *testing.T) {
	c := paperCollection(t)
	oracle, _ := c.TargetOracle("S6")
	res, err := c.Discover(nil, oracle, WithMaxQuestions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions > 1 || res.Target != "" || len(res.Candidates) < 2 {
		t.Errorf("halted run: %+v", res)
	}
}

func TestDiscoverWithUnknownAnswers(t *testing.T) {
	c := paperCollection(t)
	inner, _ := c.TargetOracle("S1")
	oracle := OracleFunc(func(entity string) Answer {
		if entity == "c" || entity == "d" {
			return Unknown
		}
		return inner.Answer(entity)
	})
	res, err := c.Discover(nil, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != "S1" {
		t.Errorf("found %q", res.Target)
	}
}

func TestDiscoverBatch(t *testing.T) {
	c := paperCollection(t)
	oracle, _ := c.TargetOracle("S5")
	res, err := c.Discover(nil, oracle, WithBatchSize(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != "S5" {
		t.Fatalf("found %q", res.Target)
	}
	if res.Interactions > res.Questions {
		t.Errorf("interactions %d > questions %d", res.Interactions, res.Questions)
	}
}

// lyingOracle answers wrongly about one entity and confirms only the truth.
type lyingOracle struct {
	truth  Oracle
	lieOn  string
	target string
}

func (l lyingOracle) Answer(entity string) Answer {
	a := l.truth.Answer(entity)
	if entity == l.lieOn {
		if a == Yes {
			return No
		}
		return Yes
	}
	return a
}

func (l lyingOracle) Confirm(name string) bool { return name == l.target }

func TestDiscoverBacktracking(t *testing.T) {
	c := paperCollection(t)
	truth, _ := c.TargetOracle("S4")
	// Lie about every entity in turn; with backtracking the truth must
	// still emerge.
	for _, lieOn := range []string{"b", "c", "d", "g", "h"} {
		oracle := lyingOracle{truth: truth, lieOn: lieOn, target: "S4"}
		res, err := c.Discover(nil, oracle, WithBacktracking())
		if err != nil {
			t.Fatalf("lie on %s: %v", lieOn, err)
		}
		if res.Target != "S4" {
			t.Errorf("lie on %s: found %q after %d backtracks", lieOn, res.Target, res.Backtracks)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	c := paperCollection(t)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("round trip: %d sets", back.Len())
	}
}

func TestReadCollectionBad(t *testing.T) {
	if _, err := ReadCollection(strings.NewReader("noelements\n")); err == nil {
		t.Error("bad input accepted")
	}
}

func TestTargetOracleUnknownSet(t *testing.T) {
	c := paperCollection(t)
	if _, err := c.TargetOracle("nope"); err == nil {
		t.Error("TargetOracle accepted unknown set")
	}
}

func TestInternalEscapeHatch(t *testing.T) {
	c := paperCollection(t)
	if c.Internal().Len() != 7 {
		t.Error("Internal() broken")
	}
}

func TestTreePersistAndDiscover(t *testing.T) {
	c := paperCollection(t)
	tr, err := c.BuildTree(WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := c.LoadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AvgDepth() != tr.AvgDepth() || loaded.Height() != tr.Height() {
		t.Error("loaded tree costs differ")
	}
	for _, target := range c.Names() {
		oracle, _ := c.TargetOracle(target)
		res, err := c.DiscoverWithTree(loaded, oracle)
		if err != nil {
			t.Fatal(err)
		}
		if res.Target != target {
			t.Errorf("offline discovery of %s found %q", target, res.Target)
		}
		if res.Questions != tr.QuestionsFor(target) {
			t.Errorf("%s: %d questions, tree says %d",
				target, res.Questions, tr.QuestionsFor(target))
		}
	}
}

func TestLoadTreeRejectsGarbage(t *testing.T) {
	c := paperCollection(t)
	if _, err := c.LoadTree(strings.NewReader("garbage")); err == nil {
		t.Error("garbage tree accepted")
	}
}

func TestDiscoverWithTreeUnknownStops(t *testing.T) {
	c := paperCollection(t)
	tr, err := c.BuildTree(WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFunc(func(string) Answer { return Unknown })
	res, err := c.DiscoverWithTree(tr, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != "" || len(res.Candidates) != 7 {
		t.Errorf("unknown-at-root walk: %+v", res)
	}
}
