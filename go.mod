module setdiscovery

go 1.24
