package setdiscovery_test

import (
	"fmt"
	"log"

	"setdiscovery"
)

// fig1 is the running example collection of the paper (Fig. 1).
func fig1() *setdiscovery.Collection {
	c, err := setdiscovery.NewCollection(map[string][]string{
		"S1": {"a", "b", "c", "d"},
		"S2": {"a", "d", "e"},
		"S3": {"a", "b", "c", "d", "f"},
		"S4": {"a", "b", "c", "g", "h"},
		"S5": {"a", "b", "h", "i"},
		"S6": {"a", "b", "j", "k"},
		"S7": {"a", "b", "g"},
	})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

// Building an offline decision tree: with 3 steps of lookahead k-LP finds
// the optimal tree of the paper's Fig. 2(a).
func ExampleCollection_BuildTree() {
	c := fig1()
	tr, err := c.BuildTree(setdiscovery.WithStrategy("klp"), setdiscovery.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("avg %.3f questions, worst case %d\n", tr.AvgDepth(), tr.Height())
	// Output:
	// avg 2.857 questions, worst case 3
}

// Interactive discovery with a simulated user who wants S2: the initial
// example {d} narrows the candidates to {S1, S2, S3}, and one question
// about the optimal distinguishing entity finishes.
func ExampleCollection_Discover() {
	c := fig1()
	oracle, err := c.TargetOracle("S2")
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Discover([]string{"d"}, oracle,
		setdiscovery.WithStrategy("klp"), setdiscovery.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %s with %d question(s)\n", res.Target, res.Questions)
	// Output:
	// found S2 with 1 question(s)
}

// A custom oracle answers from whatever source is at hand — here a fixed
// symptom list; Unknown answers are allowed and simply avoid the entity.
func ExampleOracleFunc() {
	c := fig1()
	have := map[string]bool{"a": true, "b": true, "j": true, "k": true}
	oracle := setdiscovery.OracleFunc(func(entity string) setdiscovery.Answer {
		if have[entity] {
			return setdiscovery.Yes
		}
		return setdiscovery.No
	})
	res, err := c.Discover(nil, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Target)
	// Output:
	// S6
}
