// Query discovery: the §5.2.3 scenario end to end. The user has a target
// SQL query in mind over the baseball People table but cannot write it;
// they give two example output tuples. The system generates every candidate
// CNF query consistent with the examples, treats each query's output as a
// set, and interactively discovers the target by asking about individual
// players ("would plyr01234 be in your result?").
package main

import (
	"fmt"
	"log"

	"setdiscovery/internal/baseball"
	"setdiscovery/internal/cost"
	"setdiscovery/internal/dataset"
	"setdiscovery/internal/discovery"
	"setdiscovery/internal/strategy"
)

func main() {
	// A scaled-down People table keeps the example fast; pass
	// baseball.DefaultRows (20185) for the paper-scale run.
	table, err := baseball.GeneratePeopleN(1, 6000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("People table: %d players\n\n", table.NumRows())

	ids := table.Column("playerID")
	for _, target := range baseball.TargetQueries()[:3] { // T1..T3
		inst, err := baseball.NewInstance(table, target, 42)
		if err != nil {
			log.Fatalf("%s: %v", target.Name, err)
		}
		fmt.Printf("%s: %s\n", target.Name, target.String())
		fmt.Printf("  target output: %d tuples\n", len(inst.TargetRows))
		fmt.Printf("  example tuples: %s, %s\n",
			ids.Str(int(inst.Examples[0])), ids.Str(int(inst.Examples[1])))
		fmt.Printf("  candidate queries: %d (%d distinguishable outputs)\n",
			len(inst.Candidates), inst.Collection.Len())

		res, err := discovery.Run(inst.Collection,
			[]dataset.Entity{inst.Examples[0], inst.Examples[1]},
			discovery.TargetOracle{Target: inst.TargetSet},
			discovery.Options{Strategy: strategy.NewKLPLVE(cost.AD, 3, 10)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  discovered %q\n", res.Target.Name)
		fmt.Printf("  with %d membership questions in %v of compute\n\n",
			res.Questions, res.SelectionTime.Round(1e6))
	}
}
