// Web tables: the §5.2.1 scenario. A corpus of entity sets is extracted
// from web-table columns; the user gives two example entities (say, two NBA
// players) and the system finds the exact set they have in mind among the
// hundreds of sets containing both.
package main

import (
	"fmt"
	"log"

	"setdiscovery/internal/cost"
	"setdiscovery/internal/dataset"
	"setdiscovery/internal/discovery"
	"setdiscovery/internal/strategy"
	"setdiscovery/internal/tree"
	"setdiscovery/internal/webtables"
)

func main() {
	p := webtables.DefaultParams()
	p.NumSets = 12000 // scaled for the example; DefaultParams is 40k
	corpus, err := webtables.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	st := corpus.Stats()
	fmt.Printf("corpus: %d sets, %d distinct entities, set sizes %d-%d\n\n",
		st.Sets, st.DistinctEntities, st.MinSize, st.MaxSize)

	seeds := webtables.SeedQueries(corpus, 100, 3, 7)
	if len(seeds) == 0 {
		log.Fatal("no 2-entity seed with ≥100 candidate sets; enlarge the corpus")
	}

	for _, seed := range seeds {
		sub := corpus.SupersetsOf([]dataset.Entity{seed.A, seed.B})
		fmt.Printf("seed entities (#%d, #%d): %d candidate sets\n",
			seed.A, seed.B, sub.Size())

		// Offline: how many questions would this sub-collection need on
		// average, under the greedy baseline and under k-LP?
		for _, sel := range []strategy.Factory{
			strategy.InfoGain{},
			strategy.NewKLP(cost.AD, 2),
		} {
			tr, err := tree.Build(sub, sel)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s avg %.3f questions, worst case %d\n",
				sel.Name(), tr.AvgDepth(), tr.Height())
		}

		// Online: discover one concrete member set.
		target := corpus.Set(int(sub.Members()[sub.Size()/2]))
		res, err := discovery.Run(corpus, []dataset.Entity{seed.A, seed.B},
			discovery.TargetOracle{Target: target},
			discovery.Options{Strategy: strategy.NewKLP(cost.AD, 2)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  discovered %q with %d questions (log2 %d ≈ %.1f)\n\n",
			res.Target.Name, res.Questions, sub.Size(), logTwo(sub.Size()))
	}
}

func logTwo(n int) float64 {
	l := 0.0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}
