// Triage: the paper's opening scenario. A clinic machine holds a catalogue
// of conditions, each described by its set of symptoms. The patient types a
// few symptoms; the machine narrows down the matching conditions with as
// few follow-up questions as possible.
//
// This example simulates the patient (who "has" viral sinusitis) and prints
// the question transcript, comparing k-LP against plain information gain.
package main

import (
	"fmt"
	"log"

	"setdiscovery"
)

// conditions maps each condition to its symptom set. Sourced loosely from
// common symptom checkers; the actual medicine is beside the point — this
// is a set collection with heavy overlaps, exactly the paper's setting.
var conditions = map[string][]string{
	"common cold":       {"cough", "sneezing", "runny nose", "sore throat", "fatigue"},
	"influenza":         {"fever", "cough", "fatigue", "headache", "muscle aches", "chills"},
	"covid-19":          {"fever", "cough", "fatigue", "headache", "loss of smell", "shortness of breath"},
	"strep throat":      {"fever", "sore throat", "swollen glands", "headache"},
	"mononucleosis":     {"fever", "fatigue", "sore throat", "swollen glands", "rash"},
	"viral sinusitis":   {"headache", "runny nose", "facial pain", "fatigue", "cough"},
	"allergic rhinitis": {"sneezing", "runny nose", "itchy eyes", "congestion"},
	"bronchitis":        {"cough", "fatigue", "shortness of breath", "chest discomfort"},
	"pneumonia":         {"fever", "cough", "shortness of breath", "chest pain", "chills", "fatigue"},
	"migraine":          {"headache", "nausea", "light sensitivity", "visual aura"},
	"tension headache":  {"headache", "neck pain", "fatigue"},
	"gastroenteritis":   {"nausea", "vomiting", "diarrhea", "fever", "fatigue"},
	"food poisoning":    {"nausea", "vomiting", "diarrhea", "stomach cramps"},
	"appendicitis":      {"nausea", "fever", "abdominal pain", "loss of appetite"},
	"meningitis":        {"fever", "headache", "stiff neck", "nausea", "light sensitivity"},
}

// transcriptOracle answers from the true condition's symptom set and logs
// each question.
type transcriptOracle struct {
	symptoms map[string]bool
	log      []string
}

func (o *transcriptOracle) Answer(symptom string) setdiscovery.Answer {
	if o.symptoms[symptom] {
		o.log = append(o.log, fmt.Sprintf("  machine: any %s?  patient: yes", symptom))
		return setdiscovery.Yes
	}
	o.log = append(o.log, fmt.Sprintf("  machine: any %s?  patient: no", symptom))
	return setdiscovery.No
}

func main() {
	c, err := setdiscovery.NewCollection(conditions)
	if err != nil {
		log.Fatal(err)
	}

	truth := make(map[string]bool)
	for _, s := range conditions["viral sinusitis"] {
		truth[s] = true
	}
	initial := []string{"headache", "fatigue"} // what the patient typed

	fmt.Printf("patient reports: %v (true condition: viral sinusitis)\n\n", initial)
	for _, strategyName := range []string{"infogain", "klp"} {
		oracle := &transcriptOracle{symptoms: truth}
		res, err := c.Discover(initial, oracle,
			setdiscovery.WithStrategy(strategyName),
			setdiscovery.WithK(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", strategyName)
		for _, line := range oracle.log {
			fmt.Println(line)
		}
		fmt.Printf("diagnosis after %d question(s): %s\n\n", res.Questions, res.Target)
	}

	// The offline tree shows the whole triage policy at a glance.
	tr, err := c.BuildTree(setdiscovery.WithStrategy("klp"), setdiscovery.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full triage policy (avg %.2f questions, worst case %d):\n%s",
		tr.AvgDepth(), tr.Height(), tr.Render())
}
