// Quickstart: the paper's Fig. 1 running example. Builds decision trees
// with several strategies, compares their costs against the optimum, and
// runs one simulated discovery.
package main

import (
	"fmt"
	"log"

	"setdiscovery"
)

func main() {
	// The seven sets of Fig. 1. Entity "a" appears in all of them, so no
	// question about it can ever help (it is "uninformative").
	c, err := setdiscovery.NewCollection(map[string][]string{
		"S1": {"a", "b", "c", "d"},
		"S2": {"a", "d", "e"},
		"S3": {"a", "b", "c", "d", "f"},
		"S4": {"a", "b", "c", "g", "h"},
		"S5": {"a", "b", "h", "i"},
		"S6": {"a", "b", "j", "k"},
		"S7": {"a", "b", "g"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offline decision trees: k-LP with 3-step lookahead reaches the
	// optimal tree of Fig. 2(a) — average 2.857 questions, worst case 3.
	fmt.Println("strategy comparison (7 sets, optimum: avg 2.857, worst 3):")
	for _, name := range []string{"infogain", "klp"} {
		for _, k := range []int{1, 2, 3} {
			tr, err := c.BuildTree(
				setdiscovery.WithStrategy(name),
				setdiscovery.WithK(k))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9s k=%d  avg %.3f questions, worst case %d\n",
				name, k, tr.AvgDepth(), tr.Height())
			if name == "infogain" {
				break // infogain has no lookahead parameter
			}
		}
	}

	tr, err := c.BuildTree(setdiscovery.WithStrategy("klp"), setdiscovery.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal tree:\n%s", tr.Render())

	// Simulated interactive discovery: the "user" is looking for S5 and
	// starts by giving the example entity "h".
	oracle, err := c.TargetOracle("S5")
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Discover([]string{"h"}, oracle,
		setdiscovery.WithStrategy("klp"), setdiscovery.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovering S5 from example {h}: found %q after %d question(s)\n",
		res.Target, res.Questions)
}
