package setdiscovery

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"setdiscovery/internal/wireproto"
)

// Fuzz coverage for the two public decoders that parse untrusted input: the
// binary decision-tree format behind Collection.LoadTree (persisted trees
// travel through files and object stores) and the session snapshot format
// behind RestoreSession/RestoreBatch (snapshots travel through HTTP state
// export/import and router migration). Both must reject garbage with an
// error — never panic — and anything they accept must behave like a valid
// resource.

// fuzzCollection builds the paper collection once per fuzz target.
func fuzzCollection(f *testing.F) *Collection {
	f.Helper()
	c, err := NewCollection(paperSets())
	if err != nil {
		f.Fatal(err)
	}
	return c
}

// driveAccepted pumps a session to completion with a truthful oracle,
// bounding the number of rounds so a hypothetical non-terminating decoded
// state fails the fuzz instead of hanging it.
func driveAccepted(t *testing.T, c *Collection, s *Session) {
	o, err := c.TargetOracle(c.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		q, done := s.Next()
		if done {
			return
		}
		a := No
		if !q.IsConfirm() {
			a = o.Answer(q.Entity)
		}
		if err := s.Answer(a); err != nil {
			t.Fatalf("restored session rejected its own question: %v", err)
		}
	}
	t.Fatal("restored session did not terminate within 10000 answers")
}

// FuzzLoadTree fuzzes the binary tree decoder at the public entry point: it
// must never panic, and an accepted tree must serve a full walk session.
func FuzzLoadTree(f *testing.F) {
	c := fuzzCollection(f)
	tr, err := c.BuildTree()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SDT1"))
	f.Add([]byte("SDT1\x07\x01\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		loaded, err := c.LoadTree(bytes.NewReader(input))
		if err != nil {
			return
		}
		driveAccepted(t, c, loaded.NewSession())
	})
}

// FuzzRestoreSnapshot fuzzes the snapshot decoders with one corpus across
// all three kinds (the envelope discriminates): no panics, and an accepted
// session must drive to completion.
func FuzzRestoreSnapshot(f *testing.F) {
	c := fuzzCollection(f)
	tr, err := c.BuildTree()
	if err != nil {
		f.Fatal(err)
	}
	s, err := c.NewSession([]string{"b"}, WithBacktracking())
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Answer(Yes); err != nil {
		f.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	b, err := c.NewBatch([]Seed{{Initial: []string{"b"}}, {}}, WithBatchSize(2))
	if err != nil {
		f.Fatal(err)
	}
	batchSnap, err := b.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	treeSnap, err := tr.NewSession().Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	// snap above is a version-2 envelope (shared selection is on by default,
	// so the session carries a memo delta); seed the delta-less version-1
	// envelope too so the fuzzer mutates both layouts.
	plain, err := c.NewSession([]string{"b"}, WithSharedSelection(false))
	if err != nil {
		f.Fatal(err)
	}
	plainSnap, err := plain.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(plainSnap)
	f.Add(batchSnap)
	f.Add(treeSnap)
	f.Add([]byte("SDSS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		if restored, err := c.RestoreSession(input); err == nil {
			driveAccepted(t, c, restored)
		}
		if restored, err := tr.RestoreSession(input); err == nil {
			driveAccepted(t, c, restored)
		}
		if restored, err := c.RestoreBatch(input); err == nil {
			for i := 0; i < restored.Len(); i++ {
				if _, err := restored.Result(i); err != nil {
					// Terminal member outcomes are legal snapshot content.
					continue
				}
			}
		}
	})
}

// FuzzSelectionCacheShard fuzzes the warm-shard decoder behind
// ImportSelectionCache (shards travel through /v1/cache/shard and the
// -cache-persist files): no panics, malformed input and foreign fingerprints
// are rejected with ErrBadSnapshot, and anything accepted survives an
// export/import round trip — the decoder and encoder stay a closed pair.
func FuzzSelectionCacheShard(f *testing.F) {
	seedC := fuzzCollection(f)
	for _, name := range seedC.Names() {
		o, err := seedC.TargetOracle(name)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := seedC.Discover(nil, o); err != nil {
			f.Fatal(err)
		}
	}
	var warm bytes.Buffer
	if err := seedC.ExportSelectionCache(&warm, 0); err != nil {
		f.Fatal(err)
	}
	f.Add(warm.Bytes())
	f.Add(warm.Bytes()[:len(warm.Bytes())/2])
	f.Add([]byte("SDCS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		c := fuzzShardCollection(t)
		n, err := c.ImportSelectionCache(bytes.NewReader(input))
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("rejection not wrapped in ErrBadSnapshot: %v", err)
			}
			return
		}
		if got := c.SelectionCacheStats().Entries; got != n {
			t.Fatalf("import reported %d entries, memo holds %d", n, got)
		}
		var out bytes.Buffer
		if err := c.ExportSelectionCache(&out, 0); err != nil {
			t.Fatalf("re-exporting accepted shard: %v", err)
		}
		twin := fuzzShardCollection(t)
		if m, err := twin.ImportSelectionCache(bytes.NewReader(out.Bytes())); err != nil || m != n {
			t.Fatalf("re-export round trip: imported %d of %d, err %v", m, n, err)
		}
	})
}

// FuzzGroupQuestionState fuzzes the two decoders that carry set-valued
// question state: the snapshot envelope (RestoreSession/RestoreBatch, bumped
// to version 3 for group sessions) and the wire frame decoder (group state
// travels under flag-gated appends). The corpus seeds every envelope
// generation — version-1 delta-less, version-2 shared-selection, version-3
// halving mid-flight and additive-with-constraints — plus group-flagged
// Create/Question/Answer/BatchAnswer frames. Contracts: rejections wrap
// ErrBadSnapshot / wireproto.ErrBadFrame (never a panic or naked error), an
// accepted session re-snapshots byte-identically and drives to completion,
// and an accepted frame survives decode → encode → decode deep-equal.
func FuzzGroupQuestionState(f *testing.F) {
	c := fuzzCollection(f)
	o, err := c.TargetOracle(c.Names()[0])
	if err != nil {
		f.Fatal(err)
	}
	g := o.(GroupOracle)

	// Version-3 group envelopes: halving suspended mid-flight, additive at
	// round zero with a constraint recorded.
	halving, err := c.NewSession(nil, WithGroupStrategy("halving"))
	if err != nil {
		f.Fatal(err)
	}
	if q, done := halving.Next(); !done {
		if err := halving.Answer(g.AnswerSubset(q.Subset, q.Semantics)); err != nil {
			f.Fatal(err)
		}
	}
	halvingSnap, err := halving.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	additive, err := c.NewSession(nil, WithGroupStrategy("additive"), WithGroupConstraint("a", "b"))
	if err != nil {
		f.Fatal(err)
	}
	additiveSnap, err := additive.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	groupBatch, err := c.NewBatch([]Seed{{}, {}}, WithGroupStrategy("halving"))
	if err != nil {
		f.Fatal(err)
	}
	groupBatchSnap, err := groupBatch.Snapshot()
	if err != nil {
		f.Fatal(err)
	}

	// Pre-bump envelopes: entity sessions must keep decoding unchanged
	// after the version-3 bump.
	v1, err := c.NewSession(nil, WithSharedSelection(false))
	if err != nil {
		f.Fatal(err)
	}
	v1Snap, err := v1.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	v2, err := c.NewSession(nil)
	if err != nil {
		f.Fatal(err)
	}
	if err := v2.Answer(No); err != nil {
		f.Fatal(err)
	}
	v2Snap, err := v2.Snapshot()
	if err != nil {
		f.Fatal(err)
	}

	// Group-flagged wire frames alongside the snapshots: one corpus, both
	// decoders probed per input.
	for _, m := range []wireproto.Message{
		&wireproto.Create{Channel: 1, Collection: "paper", Config: wireproto.SessionConfig{
			GroupStrategy:    "additive",
			GroupConstraints: [][2]string{{"a", "b"}},
		}},
		&wireproto.Question{Channel: 1, Members: []wireproto.MemberQuestion{
			{Subset: []string{"a", "b"}, Semantics: "intersects"},
		}},
		&wireproto.Answer{Channel: 1, Answer: "yes", Subset: []string{"a"}, Semantics: "subset-of"},
		&wireproto.BatchAnswer{Channel: 1, Answers: []wireproto.MemberAnswer{
			{Member: 0, Answer: "no", Subset: []string{"b"}, Semantics: "intersects"},
			{Member: 1, Answer: "yes"},
		}},
	} {
		buf, err := wireproto.AppendFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add(halvingSnap)
	f.Add(additiveSnap)
	f.Add(groupBatchSnap)
	f.Add(v1Snap)
	f.Add(v2Snap)
	f.Add([]byte("SDSS"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, input []byte) {
		if restored, err := c.RestoreSession(input); err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("session rejection not wrapped in ErrBadSnapshot: %v", err)
			}
		} else {
			// An accepted session's own snapshot must be a byte-stable fixed
			// point: restore → snapshot → restore → snapshot is identical.
			again, err := restored.Snapshot()
			if err != nil {
				t.Fatalf("restored session failed to re-snapshot: %v", err)
			}
			twin, err := c.RestoreSession(again)
			if err != nil {
				t.Fatalf("re-snapshot rejected: %v", err)
			}
			stable, err := twin.Snapshot()
			if err != nil {
				t.Fatalf("re-restored session failed to snapshot: %v", err)
			}
			if !bytes.Equal(again, stable) {
				t.Fatalf("snapshot not byte-stable:\nfirst  %x\nsecond %x", again, stable)
			}
			driveGroupAccepted(t, c, restored)
		}
		if _, err := c.RestoreBatch(input); err != nil && !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("batch rejection not wrapped in ErrBadSnapshot: %v", err)
		}
		m, err := wireproto.ReadFrame(bytes.NewReader(input))
		if err != nil {
			if errors.Is(err, io.EOF) && len(input) == 0 {
				return
			}
			if !errors.Is(err, wireproto.ErrBadFrame) {
				t.Fatalf("frame rejection does not wrap ErrBadFrame: %v", err)
			}
			return
		}
		buf, err := wireproto.AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v (%#v)", err, m)
		}
		m2, err := wireproto.ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v (%#v)", err, m)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("lossy frame round trip:\nfirst  %#v\nsecond %#v", m, m2)
		}
	})
}

// driveGroupAccepted pumps a fuzz-accepted session to completion answering
// every question kind — subset, confirm, entity — with the bounded-round
// guard of driveAccepted.
func driveGroupAccepted(t *testing.T, c *Collection, s *Session) {
	o, err := c.TargetOracle(c.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	g := o.(GroupOracle)
	for i := 0; i < 10000; i++ {
		q, done := s.Next()
		if done {
			return
		}
		var a Answer
		switch {
		case q.IsSubset():
			a = g.AnswerSubset(q.Subset, q.Semantics)
		case q.IsConfirm():
			a = No
		default:
			a = o.Answer(q.Entity)
		}
		if err := s.Answer(a); err != nil {
			t.Fatalf("restored session rejected its own question: %v", err)
		}
	}
	t.Fatal("restored session did not terminate within 10000 answers")
}

// fuzzShardCollection builds a fresh paper collection inside a fuzz
// iteration (each import must start from an empty memo).
func fuzzShardCollection(t *testing.T) *Collection {
	t.Helper()
	c, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	return c
}
