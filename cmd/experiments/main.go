// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                     # run everything at the default scale
//	experiments -run fig8a,table4   # run selected experiments
//	experiments -quick              # tiny sizes (CI smoke test)
//	experiments -full               # paper-scale sweeps (slow)
//	experiments -list               # list experiment IDs
//	experiments -o results.txt      # also write the report to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"setdiscovery/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "tiny workloads")
		full    = flag.Bool("full", false, "paper-scale workloads (slow)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		outPath = flag.String("o", "", "also write the report to this file")
		verbose = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *full {
		cfg = experiments.Full()
	}
	if *verbose {
		cfg.Out = os.Stderr
	}

	ids := experiments.IDs()
	if *runList != "" {
		ids = strings.Split(*runList, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if err := res.Table.Render(out); err != nil {
			fatal(err)
		}
		for _, note := range res.Notes {
			fmt.Fprintf(out, "note: %s\n", note)
		}
		fmt.Fprintf(out, "(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
