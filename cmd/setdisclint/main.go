// Command setdisclint runs the project's custom static analyzers
// (poolcheck, decoderbounds, errcmp — see internal/lint) over Go packages.
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
//
//	go vet -vettool=$(which setdisclint) ./...
//
// and it can also be run directly —
//
//	setdisclint ./...
//	setdisclint -json ./internal/discovery
//
// — in which case it re-executes `go vet` against itself, letting the go
// tool handle package loading, export data, and caching. Passing an
// analyzer name as a flag (-poolcheck) restricts the run to that analyzer.
// -json emits machine-readable findings on stdout keyed by package ID and
// analyzer, instead of file:line:col text on stderr.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"setdiscovery/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		vFlag     = flag.String("V", "", "print version and exit (-V=full is used by the go command)")
		flagsFlag = flag.Bool("flags", false, "print the tool's flags as JSON and exit (used by the go command)")
		jsonFlag  = flag.Bool("json", false, "emit findings as JSON on stdout instead of text on stderr")
		_         = flag.Int("c", -1, "display offending line plus this many lines of context (accepted for vet compatibility; ignored)")
	)
	enabled := map[string]*bool{}
	for _, a := range lint.All() {
		enabled[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer: "+a.Doc)
	}
	flag.Parse()

	switch {
	case *vFlag == "full":
		return printVersion()
	case *vFlag != "":
		fmt.Printf("%s version devel\n", progname())
		return 0
	case *flagsFlag:
		return printFlags()
	}

	analyzers := lint.All()
	var selected []*lint.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) > 0 {
		analyzers = selected
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by the go command as a vet tool, once per package.
		return lint.RunUnit(args[0], analyzers, *jsonFlag, os.Stdout, os.Stderr)
	}

	// Standalone: delegate package loading to `go vet` with ourselves as
	// the vet tool.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "setdisclint: %v\n", err)
		return 2
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	if *jsonFlag {
		vetArgs = append(vetArgs, "-json")
	}
	for _, a := range selected {
		vetArgs = append(vetArgs, "-"+a.Name)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	vetArgs = append(vetArgs, args...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdin = os.Stdin
	if !*jsonFlag {
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return ee.ExitCode()
			}
			fmt.Fprintf(os.Stderr, "setdisclint: %v\n", err)
			return 2
		}
		return 0
	}
	// JSON mode: go vet interleaves "# package" comment lines with the
	// tool's JSON on its stderr. Strip the comments so stdout carries a
	// clean stream of JSON objects, one per package with findings.
	out, err := cmd.CombinedOutput()
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "# ") || line == "" {
			continue
		}
		fmt.Println(line)
	}
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "setdisclint: %v\n", err)
		return 2
	}
	return 0
}

func progname() string {
	return filepath.Base(os.Args[0])
}

// printVersion implements -V=full: the go command derives a tool ID from
// this line (and caches vet results under it), so the format — including
// the "buildID=" final field for devel versions — is part of the vettool
// protocol.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "setdisclint: %v\n", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "setdisclint: %v\n", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "setdisclint: %v\n", err)
		return 2
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname(), string(h.Sum(nil)))
	return 0
}

// printFlags implements -flags: the go command asks which flags the tool
// accepts so it can decide what to forward from the `go vet` command line.
func printFlags() int {
	type jsonFlagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var descs []jsonFlagDesc
	flag.VisitAll(func(f *flag.Flag) {
		switch f.Name {
		case "V", "flags":
			return // protocol flags, not user-forwardable
		}
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		descs = append(descs, jsonFlagDesc{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.MarshalIndent(descs, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "setdisclint: %v\n", err)
		return 2
	}
	os.Stdout.Write(data)
	os.Stdout.Write([]byte("\n"))
	return 0
}
