// Command datagen generates the repository's datasets and writes them to
// disk in the text or binary collection format.
//
// Usage:
//
//	datagen -kind synth -n 10000 -min 50 -max 60 -alpha 0.9 -o synth.bin
//	datagen -kind webtables -n 40000 -o web.bin
//	datagen -kind baseball -o people.tsv         # People table as TSV
//	datagen -kind paper -o example.txt           # the Fig. 1 example
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"setdiscovery/internal/baseball"
	"setdiscovery/internal/dataset"
	"setdiscovery/internal/relation"
	"setdiscovery/internal/synth"
	"setdiscovery/internal/testutil"
	"setdiscovery/internal/webtables"
)

func main() {
	var (
		kind  = flag.String("kind", "synth", "dataset kind: synth, webtables, baseball, paper")
		n     = flag.Int("n", 10000, "number of sets (synth/webtables) or rows (baseball)")
		minSz = flag.Int("min", 50, "minimum set size (synth)")
		maxSz = flag.Int("max", 60, "maximum set size (synth)")
		alpha = flag.Float64("alpha", 0.9, "overlap ratio (synth)")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output path (required)")
		text  = flag.Bool("text", false, "write collections in text format instead of binary")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	switch strings.ToLower(*kind) {
	case "synth":
		c, err := synth.Generate(synth.Params{
			N: *n, SizeMin: *minSz, SizeMax: *maxSz, Alpha: *alpha, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		writeCollection(f, c, *text)
		report(c)
	case "webtables":
		p := webtables.DefaultParams()
		p.NumSets = *n
		p.Seed = *seed
		c, err := webtables.Generate(p)
		if err != nil {
			fatal(err)
		}
		writeCollection(f, c, *text)
		report(c)
	case "baseball":
		t, err := baseball.GeneratePeopleN(*seed, *n)
		if err != nil {
			fatal(err)
		}
		if err := writeTSV(f, t); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d rows to %s\n", t.NumRows(), *out)
	case "paper":
		c := testutil.PaperCollection()
		writeCollection(f, c, true)
		report(c)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func writeCollection(f *os.File, c *dataset.Collection, text bool) {
	var err error
	if text {
		err = c.WriteText(f)
	} else {
		err = c.WriteBinary(f)
	}
	if err != nil {
		fatal(err)
	}
}

func report(c *dataset.Collection) {
	st := c.Stats()
	fmt.Printf("wrote %d sets, %d distinct entities, sizes %d-%d (mean %.1f)\n",
		st.Sets, st.DistinctEntities, st.MinSize, st.MaxSize, st.MeanSize)
}

// writeTSV dumps a relation table with a header row; NULLs are empty cells.
func writeTSV(f *os.File, t *relation.Table) error {
	w := bufio.NewWriter(f)
	cols := t.Columns()
	for i, c := range cols {
		if i > 0 {
			w.WriteByte('\t')
		}
		w.WriteString(c.Name)
	}
	w.WriteByte('\n')
	for row := 0; row < t.NumRows(); row++ {
		for i, c := range cols {
			if i > 0 {
				w.WriteByte('\t')
			}
			if c.IsNull(row) {
				continue
			}
			if c.Type == relation.Int {
				fmt.Fprintf(w, "%d", c.Int(row))
			} else {
				w.WriteString(c.Str(row))
			}
		}
		w.WriteByte('\n')
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
