// Command setdiscd serves interactive set discovery over HTTP: collections
// are registered at startup, and remote clients resolve their target set
// through create-session / get-question / post-answer round-trips (the
// serving inversion of cmd/setdisc's terminal loop).
//
// Usage (engine mode):
//
//	setdiscd -collection sets.txt [-collection name=other.txt ...]
//	         [-addr :8080] [-stream-addr :8081]
//	         [-ttl 30m] [-sliding-ttl] [-max-sessions 16384]
//	         [-cache-bound n] [-cache-persist dir] [-max-batch-members 1024]
//	         [-prebuild] [-strategy klp] [-k 2] [-q 10] [-metric ad|h]
//
// Usage (router mode — the sharding tier):
//
//	setdiscd -route engineA=http://host1:8080 -route engineB=http://host2:8080
//	         [-stream-route engineA=host1:8081 -stream-route engineB=host2:8081]
//	         [-addr :8079] [-stream-addr :8078] [-router-persist routing.log]
//	         [-health-interval 5s] [-health-timeout 2s]
//	         [-health-fail 3] [-health-recover 2]
//	         [-snapshot-every 1] [-proxy-timeout 10s]
//
// Each -collection flag registers one collection; "name=path" sets the
// registered name explicitly, a bare path uses the file's base name without
// extension. With -prebuild a decision tree is constructed per collection
// at startup (using -strategy/-k/-q/-metric) and registered for tree-walk
// sessions, trading startup time for constant per-question serving cost.
//
// With -route flags the daemon runs as a router instead of an engine: it
// speaks the same /v1/ protocol, consistent-hashes collections across the
// named backends, pins every session to the engine that created it, and
// live-migrates sessions (snapshot export/import on the state endpoints)
// when a backend is drained (POST /v1/router/backends/{name}/drain) or a
// new one joins. The backends should register the same collections.
//
// The router self-heals (see the README "Fault tolerance" section): it
// probes every backend's /v1/healthz on -health-interval, declares one dead
// after -health-fail consecutive failures, resurrects the dead engine's
// sessions onto survivors from their last-known snapshots, and readmits the
// engine after -health-recover consecutive successes. -health-interval 0
// disables the probe loop. With -router-persist the backend set and the
// session→backend affinity table survive router restarts in an append-only
// log, so a restarted router keeps routing every live session without a
// rediscovery stampede.
//
// With -stream-addr the daemon additionally serves the binary streaming
// protocol (internal/wireproto) on a second listener — one persistent TCP
// connection multiplexes many sessions with one length-prefixed frame per
// question/answer round, bypassing per-request HTTP overhead (see the
// README "Wire-speed data plane" section). In router mode, -stream-route
// name=host:port declares each backend's stream address so the router can
// fan stream sessions out over pooled backend connections; backends
// without a -stream-route are reachable over the JSON plane only.
//
// With -cache-persist the engine writes each collection's hottest
// selection-cache shard to the named directory on graceful shutdown and
// reloads it at startup, so a restarted daemon serves warm from its first
// session instead of re-paying the cold-start selection cost.
//
// Example session against the paper's running example:
//
//	setdiscd -collection paper=testdata/paper.txt &
//	curl -s -X POST localhost:8080/v1/collections/paper/sessions \
//	     -d '{"initial":["b"]}'               # -> {"session_id":"...","entity":"c",...}
//	curl -s -X POST localhost:8080/v1/sessions/$ID/answer -d '{"answer":"yes"}'
//	...                                       # until "done":true
//	curl -s localhost:8080/v1/sessions/$ID/result
//
// Batch discovery steps many sessions with one POST per round; members at
// the same candidate-set state share one selection/partition computation
// (see the README "Batch discovery" section):
//
//	curl -s -X POST localhost:8080/v1/collections/paper/batches \
//	     -d '{"seeds":[{"initial":["b"]},{"initial":["b"]}]}'
//	curl -s -X POST localhost:8080/v1/batches/$BID/answers \
//	     -d '{"answers":[{"member":0,"answer":"yes"},{"member":1,"answer":"no"}]}'
//	curl -s localhost:8080/v1/batches/$BID/results
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"setdiscovery"
	"setdiscovery/internal/router"
	"setdiscovery/internal/server"
)

// collectionFlags collects repeated -collection values.
type collectionFlags []string

func (f *collectionFlags) String() string { return strings.Join(*f, ",") }

func (f *collectionFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var collections, routes, streamRoutes collectionFlags
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		streamAddr   = flag.String("stream-addr", "", "listen address for the binary streaming protocol (empty disables)")
		ttl          = flag.Duration("ttl", server.DefaultTTL, "idle session lifetime")
		slidingTTL   = flag.Bool("sliding-ttl", true, "slide a session's expiry on every touch (false = fixed deadline at creation)")
		maxSessions  = flag.Int("max-sessions", server.DefaultMaxSessions, "maximum live sessions (batch members included)")
		maxBatch     = flag.Int("max-batch-members", server.DefaultMaxBatchMembers, "maximum members per batch request")
		prebuild     = flag.Bool("prebuild", false, "build and register a decision tree per collection at startup")
		strategyName = flag.String("strategy", "klp", "entity selection strategy for -prebuild trees")
		k            = flag.Int("k", 2, "lookahead steps for -prebuild trees")
		q            = flag.Int("q", 10, "candidate entities per step (klple/klplve)")
		metricName   = flag.String("metric", "ad", "cost metric for -prebuild trees: ad or h")
		parallel     = flag.Int("parallel", 0, "tree construction workers (0 = GOMAXPROCS)")
		cacheBound   = flag.Int("cache-bound", 1<<20, "max entries per lookahead cache (clock eviction; 0 = unbounded)")
		cachePersist = flag.String("cache-persist", "", "directory for persisted selection-cache shards (written on shutdown, loaded at startup)")

		routerPersist  = flag.String("router-persist", "", "router mode: append-only log persisting the backend set and affinity table across restarts")
		healthInterval = flag.Duration("health-interval", router.DefaultHealthInterval, "router mode: backend health-probe interval (0 disables the probe loop)")
		healthTimeout  = flag.Duration("health-timeout", router.DefaultHealthTimeout, "router mode: per-probe timeout")
		healthFail     = flag.Int("health-fail", router.DefaultFailThreshold, "router mode: consecutive probe failures before a backend is declared dead")
		healthRecover  = flag.Int("health-recover", router.DefaultRecoverThreshold, "router mode: consecutive probe successes before a dead backend is readmitted")
		snapshotEvery  = flag.Int("snapshot-every", router.DefaultSnapshotEvery, "router mode: answered rounds between session-snapshot captures (resurrection staleness bound)")
		proxyTimeout   = flag.Duration("proxy-timeout", router.DefaultProxyTimeout, "router mode: per-attempt deadline on proxied client requests")
	)
	flag.Var(&collections, "collection", "collection to serve, as path or name=path (repeatable, required)")
	flag.Var(&routes, "route", "run as a router over this backend engine, as name=url (repeatable; excludes -collection)")
	flag.Var(&streamRoutes, "stream-route", "router mode: a backend's stream address, as name=host:port (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "setdiscd: ", log.LstdFlags)
	if len(routes) > 0 {
		if len(collections) > 0 {
			fmt.Fprintln(os.Stderr, "setdiscd: -route (router mode) and -collection (engine mode) are mutually exclusive")
			os.Exit(2)
		}
		runRouter(logger, *addr, routes, streamRoutes, routerConfig{
			persist:        *routerPersist,
			streamAddr:     *streamAddr,
			healthInterval: *healthInterval,
			healthTimeout:  *healthTimeout,
			healthFail:     *healthFail,
			healthRecover:  *healthRecover,
			snapshotEvery:  *snapshotEvery,
			proxyTimeout:   *proxyTimeout,
		})
		return
	}
	if len(streamRoutes) > 0 {
		fmt.Fprintln(os.Stderr, "setdiscd: -stream-route requires router mode (-route)")
		os.Exit(2)
	}
	if len(collections) == 0 {
		fmt.Fprintln(os.Stderr, "setdiscd: at least one -collection (or -route) is required")
		flag.Usage()
		os.Exit(2)
	}

	srvOpts := []server.Option{
		server.WithTTL(*ttl),
		server.WithSlidingTTL(*slidingTTL),
		server.WithMaxSessions(*maxSessions),
		server.WithMaxBatchMembers(*maxBatch),
		server.WithLogf(logger.Printf),
	}
	if *cacheBound > 0 {
		// Bound every session's shared lookahead cache so a long-running
		// daemon's memory stays flat no matter how many distinct
		// sub-collections its users explore; evictions only recompute.
		srvOpts = append(srvOpts, server.WithSessionOptions(setdiscovery.WithCacheBound(*cacheBound)))
	}
	if *cachePersist != "" {
		srvOpts = append(srvOpts, server.WithCachePersist(*cachePersist))
	}
	srv := server.New(srvOpts...)

	metric := setdiscovery.AverageDepth
	if strings.EqualFold(*metricName, "h") {
		metric = setdiscovery.Height
	}
	buildOpts := []setdiscovery.Option{
		setdiscovery.WithStrategy(*strategyName),
		setdiscovery.WithK(*k),
		setdiscovery.WithQ(*q),
		setdiscovery.WithMetric(metric),
		setdiscovery.WithParallelism(*parallel),
	}
	if *cacheBound > 0 {
		buildOpts = append(buildOpts, setdiscovery.WithCacheBound(*cacheBound))
	}

	for _, spec := range collections {
		name, path := splitSpec(spec)
		c, err := readCollection(path)
		if err != nil {
			logger.Fatal(err)
		}
		if err := srv.Register(name, c); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("registered collection %q: %d sets from %s", name, c.Len(), path)
		if *prebuild {
			start := time.Now()
			tr, err := c.BuildTree(buildOpts...)
			if err != nil {
				logger.Fatalf("building tree for %q: %v", name, err)
			}
			if err := srv.RegisterTree(name, tr); err != nil {
				logger.Fatal(err)
			}
			logger.Printf("prebuilt tree for %q in %v (avg %.2f questions, worst case %d)",
				name, time.Since(start).Round(time.Millisecond), tr.AvgDepth(), tr.Height())
		}
	}

	if *streamAddr != "" {
		ln := listenStream(logger, *streamAddr)
		defer ln.Close()
		go func() {
			if err := srv.ServeStream(ln); err != nil {
				logger.Printf("stream plane: %v", err)
			}
		}()
	}
	logger.Printf("serving on %s (session ttl %v, max %d sessions)", *addr, *ttl, *maxSessions)
	serve(logger, *addr, srv.Handler())
	// Graceful shutdown: flush the hot selection-cache shards so the next
	// start serves warm (no-op without -cache-persist).
	if err := srv.PersistCaches(); err != nil {
		logger.Printf("persisting caches: %v", err)
	}
}

// routerConfig carries the router-mode flags into runRouter.
type routerConfig struct {
	persist        string
	streamAddr     string
	healthInterval time.Duration
	healthTimeout  time.Duration
	healthFail     int
	healthRecover  int
	snapshotEvery  int
	proxyTimeout   time.Duration
}

// runRouter starts the daemon in router mode: a self-healing sharding front
// over the named backend engines.
func runRouter(logger *log.Logger, addr string, routes, streamRoutes []string, cfg routerConfig) {
	opts := []router.Option{
		router.WithLogf(logger.Printf),
		router.WithHealth(router.HealthConfig{
			Interval:         cfg.healthInterval,
			Timeout:          cfg.healthTimeout,
			FailThreshold:    cfg.healthFail,
			RecoverThreshold: cfg.healthRecover,
		}),
		router.WithSnapshotEvery(cfg.snapshotEvery),
		router.WithProxyTimeout(cfg.proxyTimeout),
	}
	if cfg.persist != "" {
		opts = append(opts, router.WithPersist(cfg.persist))
	}
	rt := router.New(opts...)
	if err := rt.PersistError(); err != nil {
		// An unusable log means a restart would silently forget every
		// session — refuse to start rather than degrade invisibly.
		logger.Fatalf("router persistence: %v", err)
	}
	for _, spec := range routes {
		i := strings.IndexByte(spec, '=')
		if i <= 0 {
			logger.Fatalf("invalid -route %q: want name=url", spec)
		}
		name, u := spec[:i], spec[i+1:]
		if err := rt.AddBackend(name, u); err != nil {
			if errors.Is(err, router.ErrBackendExists) {
				// A restart replaying its -route flags over the persisted
				// backend set: already registered, identically.
				continue
			}
			logger.Fatal(err)
		}
		logger.Printf("routing to backend %q at %s", name, u)
	}
	// Stream routes are replayed after the backends exist; they are not
	// persisted, so every restart re-declares them from its flags.
	for _, spec := range streamRoutes {
		i := strings.IndexByte(spec, '=')
		if i <= 0 {
			logger.Fatalf("invalid -stream-route %q: want name=host:port", spec)
		}
		name, sa := spec[:i], spec[i+1:]
		if err := rt.SetBackendStream(name, sa); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("stream fan-out to backend %q at %s", name, sa)
	}
	if cfg.streamAddr != "" {
		ln := listenStream(logger, cfg.streamAddr)
		defer ln.Close()
		go func() {
			if err := rt.ServeStream(ln); err != nil {
				logger.Printf("stream plane: %v", err)
			}
		}()
	}
	if cfg.healthInterval > 0 {
		hctx, hcancel := context.WithCancel(context.Background())
		defer hcancel()
		rt.StartHealth(hctx)
		logger.Printf("health loop: probing every %v (dead after %d failures, readmitted after %d successes)",
			cfg.healthInterval, cfg.healthFail, cfg.healthRecover)
	}
	logger.Printf("routing on %s (%d backends; drain with POST /v1/router/backends/{name}/drain)", addr, len(routes))
	serve(logger, addr, rt.Handler())
}

// listenStream opens the binary-plane listener, fatally on failure.
func listenStream(logger *log.Logger, addr string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatalf("stream plane: %v", err)
	}
	logger.Printf("streaming on %s (binary wire protocol)", ln.Addr())
	return ln
}

// serve runs the HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully.
func serve(logger *log.Logger, addr string, h http.Handler) {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
}

// splitSpec parses a -collection value: "name=path" or a bare path whose
// base name (without extension) becomes the registered name.
func splitSpec(spec string) (name, path string) {
	if i := strings.IndexByte(spec, '='); i > 0 {
		return spec[:i], spec[i+1:]
	}
	base := filepath.Base(spec)
	return strings.TrimSuffix(base, filepath.Ext(base)), spec
}

func readCollection(path string) (*setdiscovery.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return setdiscovery.ReadCollection(f)
}
