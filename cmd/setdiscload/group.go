package main

// -mode group: questions-to-convergence comparison. The interesting number
// for group testing is not latency but how many questions a session needs —
// a set-valued (subset) question halves the candidate space where an entity
// question merely splits on one element's occurrence. This mode resolves
// the same deterministic target list three ways — entity questions over
// JSON, subset questions (halving) over JSON, and subset questions over the
// binary stream plane — and reports mean/max questions per session side by
// side. The two group passes must agree target-for-target (the strategy is
// deterministic), which doubles as a cross-plane equivalence check under
// load.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"setdiscovery"
	"setdiscovery/internal/server"
	"setdiscovery/internal/wireproto"
)

// groupStats is one pass's questions-to-convergence aggregate.
type groupStats struct {
	questions string // "entity" or "subset (halving)"
	plane     string
	counts    []int // questions per session, indexed by target slot
	elapsed   time.Duration
}

func (g groupStats) mean() float64 {
	if len(g.counts) == 0 {
		return 0
	}
	sum := 0
	for _, n := range g.counts {
		sum += n
	}
	return float64(sum) / float64(len(g.counts))
}

func (g groupStats) max() int {
	m := 0
	for _, n := range g.counts {
		if n > m {
			m = n
		}
	}
	return m
}

// runGroupMode drives the three passes over an identical target list and
// prints the comparison (markdown for CI job summaries with -markdown).
func runGroupMode(w *os.File, markdown bool, jsonURL, streamAddr string, sessions, concurrency, conns int, seed int64, names []string, _ *setdiscovery.Collection, oracles []setdiscovery.Oracle) error {
	groups := make([]setdiscovery.GroupOracle, len(oracles))
	for i, o := range oracles {
		g, ok := o.(setdiscovery.GroupOracle)
		if !ok {
			return fmt.Errorf("oracle for %s does not answer set-valued questions", names[i])
		}
		groups[i] = g
	}

	// One shared target list so every pass resolves the same discoveries.
	rng := rand.New(rand.NewSource(seed))
	targets := make([]int, sessions)
	for i := range targets {
		targets[i] = rng.Intn(len(names))
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        0,
		MaxIdleConnsPerHost: concurrency,
	}}
	defer client.CloseIdleConnections()

	entity, err := countSessions("entity", "json", concurrency, targets, func(t int) (int, error) {
		rounds, err := resolveJSON(client, jsonURL, names[t], oracles[t])
		return len(rounds), err
	})
	if err != nil {
		return err
	}

	groupJSON, err := countSessions("subset (halving)", "json", concurrency, targets, func(t int) (int, error) {
		return resolveGroupJSON(client, jsonURL, names[t], groups[t])
	})
	if err != nil {
		return err
	}

	if conns < 1 {
		conns = 1
	}
	clients := make([]*wireproto.Client, conns)
	for i := range clients {
		c, err := wireproto.Dial(streamAddr, callTimeout)
		if err != nil {
			return fmt.Errorf("dialing stream plane: %w", err)
		}
		defer c.Close()
		clients[i] = c
	}
	var nextConn atomic.Int64
	groupStream, err := countSessions("subset (halving)", "stream", concurrency, targets, func(t int) (int, error) {
		c := clients[int(nextConn.Add(1))%conns]
		return resolveGroupStream(c, names[t], groups[t])
	})
	if err != nil {
		return err
	}

	// The strategy is deterministic: both planes must need the same number
	// of questions for the same target. A divergence means the wire lost or
	// reshaped a subset question.
	for i := range targets {
		if groupJSON.counts[i] != groupStream.counts[i] {
			return fmt.Errorf("cross-plane divergence: target %s needed %d questions over JSON but %d over stream",
				names[targets[i]], groupJSON.counts[i], groupStream.counts[i])
		}
	}

	reportGroup(w, markdown, sessions, concurrency, []groupStats{entity, groupJSON, groupStream})
	return nil
}

// countSessions resolves every target slot through resolve on a worker
// pool, recording the question count per slot.
func countSessions(questions, plane string, concurrency int, targets []int, resolve func(target int) (int, error)) (groupStats, error) {
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	counts := make([]int, len(targets))
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					return
				}
				n, err := resolve(targets[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				counts[i] = n
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return groupStats{}, fmt.Errorf("%s/%s: %w", questions, plane, firstErr)
	}
	return groupStats{questions: questions, plane: plane, counts: counts, elapsed: elapsed}, nil
}

// resolveGroupJSON drives one group session over the /v1 JSON plane to
// completion, echoing each question's subset and semantics as the answer
// assertion, and returns the number of questions answered.
func resolveGroupJSON(client *http.Client, base, want string, oracle setdiscovery.GroupOracle) (int, error) {
	post := func(url string, body []byte, out any) error {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return fmt.Errorf("%s: status %d", url, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	create, err := json.Marshal(server.CreateSessionRequest{
		SessionConfig: server.SessionConfig{GroupStrategy: "halving"},
	})
	if err != nil {
		return 0, err
	}
	var q server.QuestionResponse
	if err := post(base+"/v1/collections/"+collectionName+"/sessions", create, &q); err != nil {
		return 0, err
	}
	id := q.SessionID
	answered := 0
	for i := 0; !q.Done; i++ {
		if i > 200 {
			return 0, fmt.Errorf("group JSON session did not converge on %s", want)
		}
		req := server.AnswerRequest{Confirm: q.Confirm, Subset: q.Subset, Semantics: q.Semantics, Answer: "no"}
		switch {
		case len(q.Subset) > 0:
			if oracle.AnswerSubset(q.Subset, q.Semantics) == setdiscovery.Yes {
				req.Answer = "yes"
			}
		case q.Confirm == want:
			req.Answer = "yes"
		}
		body, err := json.Marshal(req)
		if err != nil {
			return 0, err
		}
		if err := post(base+"/v1/sessions/"+id+"/answer", body, &q); err != nil {
			return 0, err
		}
		answered++
	}
	var res server.ResultResponse
	resp, err := client.Get(base + "/v1/sessions/" + id + "/result")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return 0, err
	}
	if res.Target != want {
		return 0, fmt.Errorf("group JSON plane discovered %q, want %q", res.Target, want)
	}
	return answered, nil
}

// resolveGroupStream is resolveGroupJSON over the binary plane: one
// multiplexed channel, one frame exchange per subset question.
func resolveGroupStream(c *wireproto.Client, want string, oracle setdiscovery.GroupOracle) (int, error) {
	s := c.OpenStream()
	defer s.Close()
	q, err := s.Create(&wireproto.Create{
		Collection: collectionName,
		Config:     wireproto.SessionConfig{GroupStrategy: "halving"},
	}, callTimeout)
	if err != nil {
		return 0, err
	}
	answered := 0
	for i := 0; !q.Done; i++ {
		if i > 200 {
			return 0, fmt.Errorf("group stream session did not converge on %s", want)
		}
		mq := q.Members[0]
		ans := &wireproto.Answer{Confirm: mq.Confirm, Subset: mq.Subset, Semantics: mq.Semantics, Answer: "no"}
		switch {
		case len(mq.Subset) > 0:
			if oracle.AnswerSubset(mq.Subset, mq.Semantics) == setdiscovery.Yes {
				ans.Answer = "yes"
			}
		case mq.Confirm == want:
			ans.Answer = "yes"
		}
		if q, err = s.Answer(ans, callTimeout); err != nil {
			return 0, err
		}
		answered++
	}
	res, err := s.Result(callTimeout)
	if err != nil {
		return 0, err
	}
	if got := res.Members[0].Target; got != want {
		return 0, fmt.Errorf("group stream plane discovered %q, want %q", got, want)
	}
	return answered, nil
}

// reportGroup prints the questions-to-convergence comparison plus the
// subset/entity ratio (the group-testing payoff in one number).
func reportGroup(w *os.File, markdown bool, sessions, concurrency int, results []groupStats) {
	if markdown {
		fmt.Fprintf(w, "### setdiscload group testing — %d sessions, %d workers\n\n", sessions, concurrency)
		fmt.Fprintln(w, "| questions | plane | sessions | mean questions | max questions | wall |")
		fmt.Fprintln(w, "|-----------|-------|---------:|---------------:|--------------:|-----:|")
		for _, g := range results {
			fmt.Fprintf(w, "| %s | %s | %d | %.2f | %d | %s |\n",
				g.questions, g.plane, len(g.counts), g.mean(), g.max(), g.elapsed.Round(time.Millisecond))
		}
		if len(results) >= 2 && results[0].mean() > 0 {
			fmt.Fprintf(w, "| subset/entity | | | %.2f× | | |\n", results[1].mean()/results[0].mean())
		}
		fmt.Fprintln(w)
		return
	}
	for _, g := range results {
		fmt.Fprintf(w, "%-17s %-6s  %6d sessions  mean %6.2f questions  max %3d  in %s\n",
			g.questions, g.plane, len(g.counts), g.mean(), g.max(), g.elapsed.Round(time.Millisecond))
	}
	if len(results) >= 2 && results[0].mean() > 0 {
		fmt.Fprintf(w, "subset vs entity: %.2fx questions to convergence\n", results[1].mean()/results[0].mean())
	}
}
