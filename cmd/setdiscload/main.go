// Command setdiscload measures discovery throughput through the full
// serving stack on both data planes: the /v1 JSON plane and the binary
// streaming plane (internal/wireproto). It drives complete sessions —
// create, every question/answer round, result, with every answer checked
// against a local oracle — and reports sessions/sec plus per-round
// latency percentiles, side by side.
//
// By default it stands up an in-process fleet (-fleet engines behind one
// dual-plane router) over a synthetic 64-set collection and loads the
// router, so one invocation produces a self-contained comparison:
//
//	setdiscload -fleet 2 -sessions 1000 -concurrency 64 -markdown
//
// Point it at an external deployment instead with -addr (JSON base URL)
// and -stream (stream host:port); the target must serve the same
// synthetic collection under the name "load" (register it by running the
// engines with a collection file produced by -dump), since answers are
// driven by a locally derived oracle.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"setdiscovery"
	"setdiscovery/internal/router"
	"setdiscovery/internal/server"
	"setdiscovery/internal/wireproto"
)

const (
	collectionName = "load"
	callTimeout    = 30 * time.Second
)

func main() {
	var (
		fleetN      = flag.Int("fleet", 2, "engines in the in-process fleet (ignored with -addr/-stream)")
		addr        = flag.String("addr", "", "JSON plane base URL of an external deployment (empty = in-process fleet)")
		stream      = flag.String("stream", "", "stream plane host:port of an external deployment")
		sessions    = flag.Int("sessions", 1000, "discovery sessions to resolve per plane")
		concurrency = flag.Int("concurrency", 64, "concurrent client workers")
		conns       = flag.Int("conns", 8, "client stream connections the workers multiplex over")
		mode        = flag.String("mode", "both", "what to load: json, stream, both, or group (questions-to-convergence, entity vs subset questions)")
		seed        = flag.Int64("seed", 1, "seed for target selection")
		markdown    = flag.Bool("markdown", false, "emit the comparison as a markdown table")
		dump        = flag.Bool("dump", false, "print the synthetic collection in setdisc file format and exit")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "setdiscload: ", 0)

	c, names := buildCollection()
	if *dump {
		// The canonical text format setdiscd -collection reads, for
		// registering the workload on an external deployment.
		if err := c.Write(os.Stdout); err != nil {
			logger.Fatal(err)
		}
		return
	}
	oracles := make([]setdiscovery.Oracle, len(names))
	for i, name := range names {
		o, err := c.TargetOracle(name)
		if err != nil {
			logger.Fatal(err)
		}
		oracles[i] = o
	}

	jsonURL, streamAddr := *addr, *stream
	if jsonURL == "" && streamAddr == "" {
		f, err := startFleet(logger, *fleetN, c)
		if err != nil {
			logger.Fatal(err)
		}
		defer f.close()
		jsonURL, streamAddr = f.httpURL, f.streamAddr
		logger.Printf("in-process fleet: %d engines, router JSON %s, stream %s", *fleetN, jsonURL, streamAddr)
	}

	if *mode == "group" {
		if jsonURL == "" || streamAddr == "" {
			logger.Fatal("-mode group needs both planes (-addr and -stream, or the in-process fleet)")
		}
		if err := runGroupMode(os.Stdout, *markdown, jsonURL, streamAddr,
			*sessions, *concurrency, *conns, *seed, names, c, oracles); err != nil {
			logger.Fatal(err)
		}
		return
	}

	var results []stats
	if *mode == "json" || *mode == "both" {
		if jsonURL == "" {
			logger.Fatal("-mode json needs -addr")
		}
		st, err := runJSON(jsonURL, *sessions, *concurrency, *seed, names, oracles)
		if err != nil {
			logger.Fatal(err)
		}
		results = append(results, st)
	}
	if *mode == "stream" || *mode == "both" {
		if streamAddr == "" {
			logger.Fatal("-mode stream needs -stream")
		}
		st, err := runStream(streamAddr, *sessions, *concurrency, *conns, *seed, names, oracles)
		if err != nil {
			logger.Fatal(err)
		}
		results = append(results, st)
	}
	report(os.Stdout, *markdown, *sessions, *concurrency, results)
}

// stats is one plane's aggregate outcome.
type stats struct {
	plane    string
	sessions int
	elapsed  time.Duration
	rounds   []time.Duration // one sample per answer round-trip, sorted
}

func (s stats) perSec() float64 { return float64(s.sessions) / s.elapsed.Seconds() }

func (s stats) percentile(p float64) time.Duration {
	if len(s.rounds) == 0 {
		return 0
	}
	i := int(p*float64(len(s.rounds)-1) + 0.5)
	return s.rounds[i]
}

// run distributes `sessions` resolutions over `concurrency` workers, each
// resolving via the plane-specific resolve callback, and aggregates the
// per-round latency samples.
func run(plane string, sessions, concurrency int, seed int64, resolve func(worker int, rng *rand.Rand) ([]time.Duration, error)) (stats, error) {
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		rounds   []time.Duration
		firstErr error
	)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			var local []time.Duration
			for int(next.Add(1)) <= sessions {
				rts, err := resolve(w, rng)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, rts...)
			}
			mu.Lock()
			rounds = append(rounds, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return stats{}, fmt.Errorf("%s plane: %w", plane, firstErr)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	return stats{plane: plane, sessions: sessions, elapsed: elapsed, rounds: rounds}, nil
}

// runJSON loads the /v1 JSON plane: one tuned shared http.Client, one
// POST per answer round.
func runJSON(base string, sessions, concurrency int, seed int64, names []string, oracles []setdiscovery.Oracle) (stats, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        0,
		MaxIdleConnsPerHost: concurrency,
	}}
	defer client.CloseIdleConnections()
	return run("json", sessions, concurrency, seed, func(_ int, rng *rand.Rand) ([]time.Duration, error) {
		target := rng.Intn(len(names))
		return resolveJSON(client, base, names[target], oracles[target])
	})
}

func resolveJSON(client *http.Client, base, want string, oracle setdiscovery.Oracle) ([]time.Duration, error) {
	post := func(url string, body []byte, out any) error {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return fmt.Errorf("%s: status %d", url, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	var q server.QuestionResponse
	if err := post(base+"/v1/collections/"+collectionName+"/sessions", nil, &q); err != nil {
		return nil, err
	}
	var rounds []time.Duration
	for i := 0; !q.Done; i++ {
		if i > 200 {
			return nil, fmt.Errorf("JSON session did not converge on %s", want)
		}
		req := server.AnswerRequest{Entity: q.Entity, Confirm: q.Confirm, Answer: "no"}
		switch {
		case q.Entity != "":
			if oracle.Answer(q.Entity) == setdiscovery.Yes {
				req.Answer = "yes"
			}
		case q.Confirm == want:
			req.Answer = "yes"
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if err := post(base+"/v1/sessions/"+q.SessionID+"/answer", body, &q); err != nil {
			return nil, err
		}
		rounds = append(rounds, time.Since(t0))
	}
	var res server.ResultResponse
	resp, err := client.Get(base + "/v1/sessions/" + q.SessionID + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, err
	}
	if res.Target != want {
		return nil, fmt.Errorf("JSON plane discovered %q, want %q", res.Target, want)
	}
	return rounds, nil
}

// runStream loads the binary plane: `conns` persistent connections shared
// by all workers, one multiplexed channel per session, one frame exchange
// per answer round.
func runStream(addr string, sessions, concurrency, conns int, seed int64, names []string, oracles []setdiscovery.Oracle) (stats, error) {
	if conns < 1 {
		conns = 1
	}
	clients := make([]*wireproto.Client, conns)
	for i := range clients {
		c, err := wireproto.Dial(addr, callTimeout)
		if err != nil {
			return stats{}, fmt.Errorf("dialing stream plane: %w", err)
		}
		defer c.Close()
		clients[i] = c
	}
	return run("stream", sessions, concurrency, seed, func(w int, rng *rand.Rand) ([]time.Duration, error) {
		target := rng.Intn(len(names))
		return resolveStream(clients[w%conns], names[target], oracles[target])
	})
}

func resolveStream(c *wireproto.Client, want string, oracle setdiscovery.Oracle) ([]time.Duration, error) {
	s := c.OpenStream()
	defer s.Close()
	q, err := s.Create(&wireproto.Create{Collection: collectionName}, callTimeout)
	if err != nil {
		return nil, err
	}
	var rounds []time.Duration
	for i := 0; !q.Done; i++ {
		if i > 200 {
			return nil, fmt.Errorf("stream session did not converge on %s", want)
		}
		mq := q.Members[0]
		ans := &wireproto.Answer{Entity: mq.Entity, Confirm: mq.Confirm, Answer: "no"}
		switch {
		case mq.Entity != "":
			if oracle.Answer(mq.Entity) == setdiscovery.Yes {
				ans.Answer = "yes"
			}
		case mq.Confirm == want:
			ans.Answer = "yes"
		}
		t0 := time.Now()
		if q, err = s.Answer(ans, callTimeout); err != nil {
			return nil, err
		}
		rounds = append(rounds, time.Since(t0))
	}
	res, err := s.Result(callTimeout)
	if err != nil {
		return nil, err
	}
	if got := res.Members[0].Target; got != want {
		return nil, fmt.Errorf("stream plane discovered %q, want %q", got, want)
	}
	return rounds, nil
}

// fleet is the in-process deployment: N dual-plane engines behind one
// dual-plane router.
type fleet struct {
	httpURL    string
	streamAddr string
	closers    []func()
}

func (f *fleet) close() {
	for i := len(f.closers) - 1; i >= 0; i-- {
		f.closers[i]()
	}
}

func startFleet(logger *log.Logger, n int, c *setdiscovery.Collection) (*fleet, error) {
	if n < 1 {
		n = 1
	}
	f := &fleet{}
	rt := router.New(router.WithLogf(logger.Printf))
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("engine%d", i)
		srv := server.New(server.WithLogf(logger.Printf))
		if err := srv.Register(collectionName, c); err != nil {
			return nil, err
		}
		httpLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(httpLn)
		f.closers = append(f.closers, func() { hs.Close() })

		streamLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.ServeStream(streamLn)
		f.closers = append(f.closers, func() { streamLn.Close() })

		if err := rt.AddBackend(name, "http://"+httpLn.Addr().String()); err != nil {
			return nil, err
		}
		if err := rt.SetBackendStream(name, streamLn.Addr().String()); err != nil {
			return nil, err
		}
	}
	frontLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fhs := &http.Server{Handler: rt.Handler()}
	go fhs.Serve(frontLn)
	f.closers = append(f.closers, func() { fhs.Close() })
	f.httpURL = "http://" + frontLn.Addr().String()

	frontStream, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go rt.ServeStream(frontStream)
	f.closers = append(f.closers, func() { frontStream.Close() })
	f.streamAddr = frontStream.Addr().String()
	return f, nil
}

// buildCollection makes the synthetic 64-set workload: each set holds the
// elements of its index's 10-bit pattern plus a distinguishing marker, so
// discovery needs a handful of informative questions per session.
func buildCollection() (*setdiscovery.Collection, []string) {
	sets := make(map[string][]string, 64)
	for i := 0; i < 64; i++ {
		var elems []string
		for bit := 0; bit < 10; bit++ {
			if i&(1<<bit) != 0 {
				elems = append(elems, fmt.Sprintf("bit%d", bit))
			}
		}
		elems = append(elems, fmt.Sprintf("marker%d", i))
		sets[fmt.Sprintf("S%03d", i)] = elems
	}
	c, err := setdiscovery.NewCollection(sets)
	if err != nil {
		panic(err) // static input
	}
	return c, c.Names()
}

// report prints the per-plane numbers, and when both planes ran, the
// stream/json ratios against the acceptance bar (≥2× sessions/sec, or
// ≤0.5× round p50).
func report(w *os.File, markdown bool, sessions, concurrency int, results []stats) {
	if markdown {
		fmt.Fprintf(w, "### setdiscload — %d sessions, %d workers\n\n", sessions, concurrency)
		fmt.Fprintln(w, "| plane | sessions | wall | sessions/sec | round p50 | round p99 |")
		fmt.Fprintln(w, "|-------|---------:|-----:|-------------:|----------:|----------:|")
		for _, s := range results {
			fmt.Fprintf(w, "| %s | %d | %s | %.1f | %s | %s |\n",
				s.plane, s.sessions, s.elapsed.Round(time.Millisecond),
				s.perSec(), s.percentile(0.50), s.percentile(0.99))
		}
		if len(results) == 2 {
			j, st := results[0], results[1]
			fmt.Fprintf(w, "| stream/json | | | %.2f× | %.2f× | %.2f× |\n",
				st.perSec()/j.perSec(),
				ratio(st.percentile(0.50), j.percentile(0.50)),
				ratio(st.percentile(0.99), j.percentile(0.99)))
		}
		fmt.Fprintln(w)
		return
	}
	for _, s := range results {
		fmt.Fprintf(w, "%-6s  %6d sessions in %8s  %8.1f sessions/sec  round p50 %-10s p99 %s\n",
			s.plane, s.sessions, s.elapsed.Round(time.Millisecond),
			s.perSec(), s.percentile(0.50), s.percentile(0.99))
	}
	if len(results) == 2 {
		j, st := results[0], results[1]
		fmt.Fprintf(w, "stream vs json: %.2fx sessions/sec, %.2fx round p50\n",
			st.perSec()/j.perSec(), ratio(st.percentile(0.50), j.percentile(0.50)))
	}
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
