// Command setdisc runs interactive set discovery over a collection file:
// it asks yes/no membership questions on standard input until a single
// candidate set remains.
//
// Usage:
//
//	setdisc -collection sets.txt [-initial fever,cough] [-strategy klp]
//	        [-k 2] [-q 10] [-metric ad|h] [-max 0] [-batch 1] [-parallel 0]
//	        [-tree]
//
// The collection file holds one set per line: a name, then the elements,
// all tab-separated ('#' starts a comment). With -tree the program prints
// the offline decision tree instead of running interactively.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"setdiscovery"
)

func main() {
	var (
		collectionPath = flag.String("collection", "", "path to the collection file (required)")
		initial        = flag.String("initial", "", "comma-separated initial example entities")
		strategyName   = flag.String("strategy", "klp", "entity selection strategy (klp, klple, klplve, infogain, most-even, indg, lb1, gaink)")
		k              = flag.Int("k", 2, "lookahead steps")
		q              = flag.Int("q", 10, "candidate entities per step (klple/klplve)")
		metricName     = flag.String("metric", "ad", "cost metric: ad (average questions) or h (worst case)")
		maxQuestions   = flag.Int("max", 0, "halt after this many questions (0 = unlimited)")
		batch          = flag.Int("batch", 1, "membership questions per interaction")
		parallel       = flag.Int("parallel", 0, "tree construction workers (0 = GOMAXPROCS, 1 = sequential)")
		showTree       = flag.Bool("tree", false, "print the offline decision tree and exit")
		saveTree       = flag.String("save-tree", "", "build the offline tree, save it to this path, and exit")
		loadTree       = flag.String("load-tree", "", "discover along a tree saved with -save-tree (constant per-question latency)")
	)
	flag.Parse()
	if *collectionPath == "" {
		fmt.Fprintln(os.Stderr, "setdisc: -collection is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*collectionPath)
	if err != nil {
		fatal(err)
	}
	c, err := setdiscovery.ReadCollection(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d sets from %s\n", c.Len(), *collectionPath)

	metric := setdiscovery.AverageDepth
	if strings.EqualFold(*metricName, "h") {
		metric = setdiscovery.Height
	}
	opts := []setdiscovery.Option{
		setdiscovery.WithStrategy(*strategyName),
		setdiscovery.WithK(*k),
		setdiscovery.WithQ(*q),
		setdiscovery.WithMetric(metric),
		setdiscovery.WithMaxQuestions(*maxQuestions),
		setdiscovery.WithBatchSize(*batch),
		setdiscovery.WithParallelism(*parallel),
	}

	if *showTree {
		tr, err := c.BuildTree(opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("decision tree (avg %.2f questions, worst case %d):\n%s",
			tr.AvgDepth(), tr.Height(), tr.Render())
		return
	}
	if *saveTree != "" {
		tr, err := c.BuildTree(opts...)
		if err != nil {
			fatal(err)
		}
		out, err := os.Create(*saveTree)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteBinary(out); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved tree (avg %.2f questions, worst case %d) to %s\n",
			tr.AvgDepth(), tr.Height(), *saveTree)
		return
	}

	var init []string
	if *initial != "" {
		for _, s := range strings.Split(*initial, ",") {
			init = append(init, strings.TrimSpace(s))
		}
	}

	oracle := &stdinOracle{in: bufio.NewScanner(os.Stdin)}
	var res *setdiscovery.Result
	if *loadTree != "" {
		tf, err := os.Open(*loadTree)
		if err != nil {
			fatal(err)
		}
		tr, err := c.LoadTree(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		res, err = c.DiscoverWithTree(tr, oracle)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		res, err = c.Discover(init, oracle, opts...)
		if err != nil {
			fatal(err)
		}
	}
	switch {
	case res.Target != "":
		fmt.Printf("\nfound your set after %d question(s): %s\n", res.Questions, res.Target)
		fmt.Printf("members: %s\n", strings.Join(c.Elements(res.Target), ", "))
	case len(res.Candidates) == 0:
		fmt.Println("\nno set matches all your answers")
	default:
		fmt.Printf("\nstopped with %d candidates: %s\n",
			len(res.Candidates), strings.Join(res.Candidates, ", "))
	}
}

// stdinOracle asks the human on the terminal.
type stdinOracle struct {
	in *bufio.Scanner
}

func (o *stdinOracle) Answer(entity string) setdiscovery.Answer {
	for {
		fmt.Printf("is %q in your set? [y/n/?] ", entity)
		if !o.in.Scan() {
			fmt.Println()
			return setdiscovery.Unknown
		}
		switch strings.ToLower(strings.TrimSpace(o.in.Text())) {
		case "y", "yes":
			return setdiscovery.Yes
		case "n", "no":
			return setdiscovery.No
		case "?", "dk", "dont know", "don't know":
			return setdiscovery.Unknown
		default:
			fmt.Println("please answer y, n or ?")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "setdisc:", err)
	os.Exit(1)
}
