package setdiscovery

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// singletonCollection64 is the acceptance workload from the issue: 64 sets,
// each holding one private marker entity. Entity questions can eliminate at
// most one candidate per round here; group questions halve the space.
func singletonCollection64(t *testing.T) *Collection {
	t.Helper()
	sets := make(map[string][]string, 64)
	for i := 0; i < 64; i++ {
		sets[fmt.Sprintf("S%02d", i)] = []string{fmt.Sprintf("m%02d", i)}
	}
	c, err := NewCollection(sets)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// driveGroupSession pumps a public group session against a GroupOracle.
func driveGroupSession(t *testing.T, s *Session, o GroupOracle) {
	t.Helper()
	confirmer, _ := o.(Confirmer)
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("group session does not converge")
		}
		q, done := s.Next()
		if done {
			return
		}
		var a Answer
		switch {
		case q.IsConfirm():
			a = No
			if confirmer != nil && confirmer.Confirm(q.Confirm) {
				a = Yes
			}
		case q.IsSubset():
			a = o.AnswerSubset(q.Subset, q.Semantics)
		default:
			a = o.Answer(q.Entity)
		}
		if err := s.Answer(a); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupHalvingBeatsEntityQuestions is the issue's headline pin: on 64
// singleton sets the halving group strategy finds any target in at most 8
// set-valued questions (logarithmic), while the best entity strategy needs
// at least 20 questions on average (linear — each entity question eliminates
// one candidate).
func TestGroupHalvingBeatsEntityQuestions(t *testing.T) {
	c := singletonCollection64(t)
	names := c.Names()

	worstGroup := 0
	for _, name := range names {
		oracle, err := c.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Discover(nil, oracle, WithGroupStrategy("halving"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Target != name {
			t.Fatalf("halving discovered %q, want %q", res.Target, name)
		}
		if res.Questions > 8 {
			t.Fatalf("halving needed %d questions for %s, want ≤ 8", res.Questions, name)
		}
		if res.Questions > worstGroup {
			worstGroup = res.Questions
		}
	}

	for _, strat := range []string{"klp", "infogain", "most-even"} {
		total := 0
		for _, name := range names {
			oracle, err := c.TargetOracle(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Discover(nil, oracle, WithStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}
			if res.Target != name {
				t.Fatalf("%s discovered %q, want %q", strat, res.Target, name)
			}
			total += res.Questions
		}
		if mean := float64(total) / float64(len(names)); mean < 20 {
			t.Fatalf("entity strategy %s averaged %.1f questions on singletons, want ≥ 20 (group worst case was %d)",
				strat, mean, worstGroup)
		}
	}
}

// culpritSets enumerates every dependency-closed non-empty subset of size
// ≤ 3 over eight modules a..h under the constraint "a implies b" — the
// realisable enabled-module states of a bisect search with one dependency.
func culpritSets() map[string][]string {
	mods := strings.Split("a b c d e f g h", " ")
	sets := make(map[string][]string)
	var rec func(start int, cur []string)
	rec = func(start int, cur []string) {
		if len(cur) > 0 {
			hasA, hasB := false, false
			for _, m := range cur {
				hasA = hasA || m == "a"
				hasB = hasB || m == "b"
			}
			if !hasA || hasB {
				sets["C"+strings.Join(cur, "")] = append([]string(nil), cur...)
			}
		}
		if len(cur) == 3 {
			return
		}
		for i := start; i < len(mods); i++ {
			rec(i+1, append(cur, mods[i]))
		}
	}
	rec(0, nil)
	return sets
}

// TestGroupAdditiveMultiCulprit pins the multi-culprit acceptance: the
// additive strategy finds the k=3 culprit set {a,b,c} — and every other
// realisable target — over realisable probes under the a→b dependency.
func TestGroupAdditiveMultiCulprit(t *testing.T) {
	c, err := NewCollection(culpritSets())
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithGroupStrategy("additive"), WithGroupConstraint("a", "b")}
	for _, name := range append([]string{"Cabc"}, c.Names()...) {
		oracle, err := c.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Discover(nil, oracle, opts...)
		if err != nil {
			t.Fatalf("target %s: %v", name, err)
		}
		if res.Target != name {
			t.Fatalf("additive discovered %q, want %q", res.Target, name)
		}
	}
}

func TestGroupConstraintUnknownEntity(t *testing.T) {
	c := singletonCollection64(t)
	oracle, err := c.TargetOracle("S00")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Discover(nil, oracle,
		WithGroupStrategy("additive"), WithGroupConstraint("no-such-module", "m00"))
	if err == nil || !strings.Contains(err.Error(), "no-such-module") {
		t.Fatalf("unknown constraint entity accepted: %v", err)
	}
}

func TestGroupDiscoverRequiresGroupOracle(t *testing.T) {
	c := singletonCollection64(t)
	plain := OracleFunc(func(string) Answer { return No })
	if _, err := c.Discover(nil, plain, WithGroupStrategy("halving")); err == nil {
		t.Fatal("Discover accepted a plain Oracle for a group session")
	}
}

func TestGroupUnknownStrategyName(t *testing.T) {
	c := singletonCollection64(t)
	oracle, _ := c.TargetOracle("S00")
	if _, err := c.Discover(nil, oracle, WithGroupStrategy("no-such-strategy")); err == nil {
		t.Fatal("unknown group strategy accepted")
	}
}

// TestGroupSnapshotVersioning pins the envelope bump: group sessions emit
// version 3 (they must carry the group section to be restorable), while
// entity sessions keep emitting the pre-bump version-1 bytes — old readers
// and stored snapshots are unaffected by the feature shipping.
func TestGroupSnapshotVersioning(t *testing.T) {
	c := singletonCollection64(t)
	g, err := c.NewSession(nil, WithGroupStrategy("halving"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap[4] != 3 {
		t.Fatalf("group session snapshot version = %d, want 3", snap[4])
	}
	e, err := c.NewSession(nil, WithSharedSelection(false))
	if err != nil {
		t.Fatal(err)
	}
	esnap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if esnap[4] != 1 {
		t.Fatalf("entity session snapshot version = %d, want pre-bump 1", esnap[4])
	}

	// A version-3 envelope with its group section truncated must be
	// rejected with ErrBadSnapshot, not misparsed as session state.
	for cut := len(snap) - 1; cut > 22; cut-- {
		if _, err := c.RestoreSession(snap[:cut]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("truncated group snapshot (%d bytes) error = %v, want ErrBadSnapshot", cut, err)
		}
	}
	// Restoring over a different collection is rejected by the fingerprint.
	other, err := NewCollection(culpritSets())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.RestoreSession(snap); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("foreign-collection restore error = %v, want ErrBadSnapshot", err)
	}
}

// TestGroupSnapshotRestoreFinishesIdentically suspends a group session at
// every round, restores the snapshot, and requires byte-identical
// re-encoding plus an identical finish by the restored twin.
func TestGroupSnapshotRestoreFinishesIdentically(t *testing.T) {
	c := singletonCollection64(t)
	opts := []Option{WithGroupStrategy("halving"), WithBacktracking()}
	for _, name := range []string{"S00", "S31", "S63"} {
		oracle, err := c.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		g := oracle.(GroupOracle)
		s, err := c.NewSession(nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var twin *Session
		for i := 0; !s.Done(); i++ {
			if i > 10000 {
				t.Fatal("no convergence")
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := c.RestoreSession(snap)
			if err != nil {
				t.Fatal(err)
			}
			again, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, again) {
				t.Fatalf("snapshot not byte-identical after restore (round %d)", i)
			}
			if twin == nil && i == 2 {
				twin = restored
			}
			q, done := s.Next()
			if done {
				break
			}
			var a Answer
			switch {
			case q.IsConfirm():
				a = No
				if oracle.(Confirmer).Confirm(q.Confirm) {
					a = Yes
				}
			case q.IsSubset():
				a = g.AnswerSubset(q.Subset, q.Semantics)
			default:
				t.Fatalf("group session asked an entity question: %+v", q)
			}
			if err := s.Answer(a); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Target != name {
			t.Fatalf("discovered %q, want %q", res.Target, name)
		}
		if twin == nil {
			t.Fatal("session finished before round 2; no twin forked")
		}
		driveGroupSession(t, twin, g)
		twinRes, err := twin.Result()
		if err != nil {
			t.Fatal(err)
		}
		if twinRes.Target != res.Target || twinRes.Questions != res.Questions {
			t.Fatalf("restored twin diverged: %+v vs %+v", twinRes, res)
		}
	}
}

// TestGroupBatch drives a batch of group sessions to three different
// targets and round-trips the whole batch through Snapshot/RestoreBatch.
func TestGroupBatch(t *testing.T) {
	c := singletonCollection64(t)
	targets := []string{"S05", "S23", "S42"}
	seeds := make([]Seed, len(targets))
	b, err := c.NewBatch(seeds, WithGroupStrategy("halving"))
	if err != nil {
		t.Fatal(err)
	}
	oracles := make([]GroupOracle, len(targets))
	for i, name := range targets {
		o, err := c.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = o.(GroupOracle)
	}
	// One round, then migrate the batch through a snapshot.
	for i := range targets {
		q, done := b.Question(i)
		if done || !q.IsSubset() {
			t.Fatalf("member %d: want a subset question, got %+v (done %v)", i, q, done)
		}
		if err := b.AnswerMember(i, oracles[i].AnswerSubset(q.Subset, q.Semantics)); err != nil {
			t.Fatal(err)
		}
	}
	b.EndRound()
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap[4] != 3 {
		t.Fatalf("group batch snapshot version = %d, want 3", snap[4])
	}
	b, err = c.RestoreBatch(snap)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; !b.Done(); round++ {
		if round > 100 {
			t.Fatal("batch does not converge")
		}
		for i := range targets {
			if b.MemberDone(i) {
				continue
			}
			q, done := b.Question(i)
			if done {
				continue
			}
			if err := b.AnswerMember(i, oracles[i].AnswerSubset(q.Subset, q.Semantics)); err != nil {
				t.Fatal(err)
			}
		}
		b.EndRound()
	}
	for i, name := range targets {
		res, err := b.Result(i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Target != name {
			t.Fatalf("member %d discovered %q, want %q", i, res.Target, name)
		}
	}
}
