package setdiscovery

import (
	"errors"
	"reflect"
	"testing"
)

// lieOnOracle answers truthfully for its target except for one entity, where
// it lies; confirmation is truthful. Deterministic and stateless per entity,
// so an original session and its restored twin see identical answers.
type lieOnOracle struct {
	inner Oracle
	lieOn string
}

func (l lieOnOracle) Answer(entity string) Answer {
	a := l.inner.Answer(entity)
	if entity != l.lieOn {
		return a
	}
	if a == Yes {
		return No
	}
	return Yes
}

func (l lieOnOracle) Confirm(setName string) bool {
	return l.inner.(Confirmer).Confirm(setName)
}

// unknownOnOracle answers Unknown for one entity and truthfully otherwise.
type unknownOnOracle struct {
	inner Oracle
	on    string
}

func (u unknownOnOracle) Answer(entity string) Answer {
	if entity == u.on {
		return Unknown
	}
	return u.inner.Answer(entity)
}

// stepSession answers exactly one pending question (membership or
// confirmation), reporting false when the session is done.
func stepSession(t *testing.T, s *Session, o Oracle) bool {
	t.Helper()
	q, done := s.Next()
	if done {
		return false
	}
	a := o.Answer(q.Entity)
	if q.IsConfirm() {
		a = No
		if c, ok := o.(Confirmer); ok && c.Confirm(q.Confirm) {
			a = Yes
		}
	}
	if err := s.Answer(a); err != nil {
		t.Fatalf("Answer: %v", err)
	}
	return true
}

// sameResults fails unless two results agree on everything but timing.
func sameResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Target != want.Target || got.Questions != want.Questions ||
		got.Interactions != want.Interactions || got.Backtracks != want.Backtracks ||
		!reflect.DeepEqual(got.Candidates, want.Candidates) {
		t.Errorf("%s: results diverged:\nrestored: %+v\noriginal: %+v", label, got, want)
	}
}

// TestSnapshotRestoreSession is the public acceptance test for portable
// sessions: at every suspension point, Snapshot + RestoreSession onto a
// *separately built* collection (the cross-process situation) yields a twin
// that asks the identical remaining questions and finishes with the same
// counters and Result as the never-suspended session — plain, with "don't
// know" answers, and through backtracking.
func TestSnapshotRestoreSession(t *testing.T) {
	c1, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCollection(paperSets()) // the "other process"
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		opts   []Option
		oracle func(inner Oracle) Oracle
	}{
		{"default", nil, func(inner Oracle) Oracle { return inner }},
		{"mosteven-batch3", []Option{WithStrategy("most-even"), WithBatchSize(3)},
			func(inner Oracle) Oracle { return inner }},
		{"unknowns", []Option{WithStrategy("infogain")},
			func(inner Oracle) Oracle { return unknownOnOracle{inner: inner, on: "b"} }},
		{"backtracking-liar", []Option{WithBacktracking()},
			func(inner Oracle) Oracle { return lieOnOracle{inner: inner, lieOn: "c"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, target := range c1.Names() {
				inner, err := c1.TargetOracle(target)
				if err != nil {
					t.Fatal(err)
				}
				o := tc.oracle(inner)
				ref, err := c1.NewSession(nil, tc.opts...)
				if err != nil {
					t.Fatal(err)
				}
				steps := 0
				for stepSession(t, ref, o) {
					steps++
				}
				for cut := 0; cut <= steps; cut++ {
					orig, err := c1.NewSession(nil, tc.opts...)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < cut && stepSession(t, orig, o); i++ {
					}
					snap, err := orig.Snapshot()
					if err != nil {
						t.Fatalf("%s cut %d: Snapshot: %v", target, cut, err)
					}
					restored, err := c2.RestoreSession(snap)
					if err != nil {
						t.Fatalf("%s cut %d: RestoreSession: %v", target, cut, err)
					}
					if restored.Questions() != orig.Questions() {
						t.Fatalf("%s cut %d: question count %d after restore, want %d",
							target, cut, restored.Questions(), orig.Questions())
					}
					// The restored twin's oracle must resolve against c2's
					// names — identical input, so c1's oracle works for both.
					gotAsked := driveSession(t, restored, o)
					wantAsked := driveSession(t, orig, o)
					if !reflect.DeepEqual(gotAsked, wantAsked) {
						t.Fatalf("%s cut %d: remaining questions diverged:\nrestored: %v\noriginal: %v",
							target, cut, gotAsked, wantAsked)
					}
					gotRes, gotErr := restored.Result()
					wantRes, wantErr := orig.Result()
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("%s cut %d: result errors diverged: %v vs %v", target, cut, gotErr, wantErr)
					}
					if gotErr == nil {
						sameResults(t, target, gotRes, wantRes)
					}
				}
			}
		})
	}
}

// TestSnapshotRestoreTreeSession pins the tree-walk variant: snapshots
// restore onto an equivalent tree built by another process and finish
// identically.
func TestSnapshotRestoreTreeSession(t *testing.T) {
	c1, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	t1, err := c1.BuildTree()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c2.BuildTree() // same input, same options: identical tree
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range c1.Names() {
		o, err := c1.TargetOracle(target)
		if err != nil {
			t.Fatal(err)
		}
		ref := t1.NewSession()
		steps := 0
		for stepSession(t, ref, o) {
			steps++
		}
		for cut := 0; cut <= steps; cut++ {
			orig := t1.NewSession()
			for i := 0; i < cut && stepSession(t, orig, o); i++ {
			}
			snap, err := orig.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := t2.RestoreSession(snap)
			if err != nil {
				t.Fatalf("%s cut %d: RestoreSession: %v", target, cut, err)
			}
			gotAsked := driveSession(t, restored, o)
			wantAsked := driveSession(t, orig, o)
			if !reflect.DeepEqual(gotAsked, wantAsked) {
				t.Fatalf("%s cut %d: remaining questions diverged: %v vs %v",
					target, cut, gotAsked, wantAsked)
			}
			gotRes, _ := restored.Result()
			wantRes, _ := orig.Result()
			sameResults(t, target, gotRes, wantRes)
		}
	}
}

// TestSnapshotRestoreBatch: a suspended batch restores with every member
// resuming exactly where it stopped and the amortisation counters intact.
func TestSnapshotRestoreBatch(t *testing.T) {
	c1, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	targets := c1.Names()
	seeds := make([]Seed, len(targets))
	oracles := make([]Oracle, len(targets))
	for i, name := range targets {
		o, err := c1.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = o
	}
	runRound := func(b *Batch) bool {
		progressed := false
		for i := 0; i < b.Len(); i++ {
			q, done := b.Question(i)
			if done {
				continue
			}
			a := oracles[i].Answer(q.Entity)
			if q.IsConfirm() {
				a = No
			}
			if err := b.AnswerMember(i, a); err != nil {
				t.Fatal(err)
			}
			progressed = true
		}
		b.EndRound()
		return progressed
	}
	ref, err := c1.NewBatch(seeds)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for !ref.Done() && runRound(ref) {
		rounds++
	}
	for cut := 0; cut <= rounds; cut++ {
		orig, err := c1.NewBatch(seeds)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i++ {
			runRound(orig)
		}
		snap, err := orig.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := c2.RestoreBatch(snap)
		if err != nil {
			t.Fatalf("cut %d: RestoreBatch: %v", cut, err)
		}
		if restored.Stats() != orig.Stats() {
			t.Errorf("cut %d: stats diverged after restore: %+v vs %+v",
				cut, restored.Stats(), orig.Stats())
		}
		for !restored.Done() && runRound(restored) {
		}
		for !orig.Done() && runRound(orig) {
		}
		for i := range targets {
			gotRes, gotErr := restored.Result(i)
			wantRes, wantErr := orig.Result(i)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("cut %d member %d: result errors diverged: %v vs %v", cut, i, gotErr, wantErr)
			}
			if gotErr == nil {
				sameResults(t, targets[i], gotRes, wantRes)
			}
		}
	}
}

// TestSnapshotRejections: snapshots must not restore over the wrong
// collection or through the wrong entry point, and garbage must fail
// cleanly.
func TestSnapshotRejections(t *testing.T) {
	c, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewCollection(map[string][]string{
		"A": {"x", "y"}, "B": {"x", "z"}, "C": {"y", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.BuildTree()
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.NewSession([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	treeSnap, err := tr.NewSession().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewBatch([]Seed{{Initial: []string{"b"}}, {}})
	if err != nil {
		t.Fatal(err)
	}
	batchSnap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if info, err := ReadSnapshotInfo(snap); err != nil || info.Kind != SnapshotSession {
		t.Errorf("ReadSnapshotInfo(session) = %+v, %v", info, err)
	}
	if info, err := ReadSnapshotInfo(treeSnap); err != nil || info.Kind != SnapshotTreeSession {
		t.Errorf("ReadSnapshotInfo(tree) = %+v, %v", info, err)
	}
	if info, err := ReadSnapshotInfo(batchSnap); err != nil || info.Kind != SnapshotBatch {
		t.Errorf("ReadSnapshotInfo(batch) = %+v, %v", info, err)
	}

	rejections := []struct {
		name string
		do   func() error
	}{
		{"session onto foreign collection", func() error { _, err := other.RestoreSession(snap); return err }},
		{"batch onto foreign collection", func() error { _, err := other.RestoreBatch(batchSnap); return err }},
		{"tree snapshot via RestoreSession", func() error { _, err := c.RestoreSession(treeSnap); return err }},
		{"session snapshot via RestoreBatch", func() error { _, err := c.RestoreBatch(snap); return err }},
		{"batch snapshot via RestoreSession", func() error { _, err := c.RestoreSession(batchSnap); return err }},
		{"session snapshot via Tree.RestoreSession", func() error { _, err := tr.RestoreSession(snap); return err }},
		{"empty input", func() error { _, err := c.RestoreSession(nil); return err }},
		{"bad magic", func() error { _, err := c.RestoreSession([]byte("XXXXxxxxxxxxxxxxxxxxxxxxxxxx")); return err }},
		{"truncated", func() error { _, err := c.RestoreSession(snap[:len(snap)/2]); return err }},
	}
	for _, rj := range rejections {
		if err := rj.do(); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", rj.name, err)
		}
	}

	// A finished session snapshots and restores as finished.
	o, err := c.TargetOracle("S5")
	if err != nil {
		t.Fatal(err)
	}
	driveSession(t, s, o)
	doneSnap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := c.RestoreSession(doneSnap)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Done() {
		t.Error("restored finished session is not done")
	}
	gotRes, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "done-session", gotRes, wantRes)
}
