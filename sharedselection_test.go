package setdiscovery

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// unsureFirstOracle answers "don't know" to its first question, then defers
// to the inner target oracle — forcing the exclusion path, which must bypass
// the shared memo.
type unsureFirstOracle struct {
	inner Oracle
	first bool
}

func (o *unsureFirstOracle) Answer(entity string) Answer {
	if o.first {
		o.first = false
		return Unknown
	}
	return o.inner.Answer(entity)
}

// firstLieOracle flips its first membership answer, steering the session to
// a wrong candidate whose confirmation the true-target Confirmer then
// rejects — exercising §6 backtracking identically on the shared and
// unshared runs.
type firstLieOracle struct {
	inner Oracle
	lied  bool
}

func (o *firstLieOracle) Answer(entity string) Answer {
	a := o.inner.Answer(entity)
	if !o.lied {
		o.lied = true
		if a == Yes {
			return No
		}
		return Yes
	}
	return a
}

func (o *firstLieOracle) Confirm(setName string) bool {
	if c, ok := o.inner.(Confirmer); ok {
		return c.Confirm(setName)
	}
	return false
}

// discoverAsked runs Discover with a recording oracle and returns the asked
// entity sequence plus the result.
func discoverAsked(t *testing.T, c *Collection, mkOracle func() Oracle, opts ...Option) ([]string, *Result) {
	t.Helper()
	rec := &recordingOracle{inner: mkOracle()}
	res, err := c.Discover(nil, rec, opts...)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	return rec.asked, res
}

// TestSharedSelectionMatchesUnshared is the tentpole equivalence pin at the
// public layer: across strategies, "don't know" answers and backtracking,
// discovery with the collection-wide selection memo (the default) asks
// byte-identical question sequences to WithSharedSelection(false) — and a
// second shared run over the now-warm memo (the pure hit path) stays
// identical too.
func TestSharedSelectionMatchesUnshared(t *testing.T) {
	optsets := [][]Option{
		nil,
		{WithStrategy("klple"), WithK(3), WithQ(5)},
		{WithStrategy("klplve"), WithK(3), WithQ(5)},
		{WithStrategy("infogain")},
		{WithStrategy("most-even"), WithBatchSize(3)},
	}
	for _, opts := range optsets {
		shared, err := NewCollection(paperSets())
		if err != nil {
			t.Fatal(err)
		}
		unshared, err := NewCollection(paperSets())
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range shared.Names() {
			mk := func(c *Collection) func() Oracle {
				return func() Oracle {
					o, err := c.TargetOracle(name)
					if err != nil {
						t.Fatal(err)
					}
					return o
				}
			}
			off := append(append([]Option(nil), opts...), WithSharedSelection(false))
			wantAsked, want := discoverAsked(t, unshared, mk(unshared), off...)
			for run := 0; run < 2; run++ { // run 1 replays against a warm memo
				gotAsked, got := discoverAsked(t, shared, mk(shared), opts...)
				if !reflect.DeepEqual(gotAsked, wantAsked) {
					t.Fatalf("%s run %d: shared asked %v, unshared asked %v", name, run, gotAsked, wantAsked)
				}
				if got.Target != want.Target || got.Questions != want.Questions ||
					got.Interactions != want.Interactions || got.Backtracks != want.Backtracks ||
					!reflect.DeepEqual(got.Candidates, want.Candidates) {
					t.Fatalf("%s run %d: shared result %+v, unshared %+v", name, run, got, want)
				}
			}
		}
		if st := shared.SelectionCacheStats(); st.Hits == 0 || st.Entries == 0 {
			t.Fatalf("shared collection never hit its memo: %+v", st)
		}
		if st := unshared.SelectionCacheStats(); st.Entries != 0 {
			t.Fatalf("WithSharedSelection(false) populated the memo: %+v", st)
		}
	}
}

// TestSharedSelectionWithUnknownsAndBacktracking covers the paths that must
// bypass or replay through the memo without changing a single question:
// exclusions (memo bypass) and §6 confirm-and-recover.
func TestSharedSelectionWithUnknownsAndBacktracking(t *testing.T) {
	shared, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	unshared, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range shared.Names() {
		inner := func(c *Collection) Oracle {
			o, err := c.TargetOracle(name)
			if err != nil {
				t.Fatal(err)
			}
			return o
		}
		cases := []struct {
			label string
			mk    func(c *Collection) func() Oracle
			opts  []Option
		}{
			{"unknown-first", func(c *Collection) func() Oracle {
				return func() Oracle { return &unsureFirstOracle{inner: inner(c), first: true} }
			}, nil},
			{"backtracking", func(c *Collection) func() Oracle {
				return func() Oracle { return &firstLieOracle{inner: inner(c)} }
			}, []Option{WithBacktracking()}},
		}
		for _, tc := range cases {
			off := append(append([]Option(nil), tc.opts...), WithSharedSelection(false))
			wantAsked, want := discoverAsked(t, unshared, tc.mk(unshared), off...)
			gotAsked, got := discoverAsked(t, shared, tc.mk(shared), tc.opts...)
			if !reflect.DeepEqual(gotAsked, wantAsked) {
				t.Fatalf("%s/%s: shared asked %v, unshared asked %v", name, tc.label, gotAsked, wantAsked)
			}
			if got.Target != want.Target || got.Backtracks != want.Backtracks {
				t.Fatalf("%s/%s: shared result %+v, unshared %+v", name, tc.label, got, want)
			}
		}
	}
}

// TestExportImportSelectionCache pins the warm-shard surface: a warmed
// collection's shard imports into a same-content twin, which then serves a
// session with zero computed selections and the reference question sequence.
func TestExportImportSelectionCache(t *testing.T) {
	warm, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	name := warm.Names()[len(warm.Names())-1]
	mk := func(c *Collection) func() Oracle {
		return func() Oracle {
			o, err := c.TargetOracle(name)
			if err != nil {
				t.Fatal(err)
			}
			return o
		}
	}
	wantAsked, _ := discoverAsked(t, warm, mk(warm))
	var shard bytes.Buffer
	if err := warm.ExportSelectionCache(&shard, 0); err != nil {
		t.Fatal(err)
	}

	cold, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	n, err := cold.ImportSelectionCache(bytes.NewReader(shard.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || cold.SelectionCacheStats().Entries != n {
		t.Fatalf("imported %d entries, stats %+v", n, cold.SelectionCacheStats())
	}
	gotAsked, _ := discoverAsked(t, cold, mk(cold))
	if !reflect.DeepEqual(gotAsked, wantAsked) {
		t.Fatalf("warmed twin asked %v, want %v", gotAsked, wantAsked)
	}
	if st := cold.SelectionCacheStats(); st.Computed != 0 {
		t.Fatalf("warmed twin computed %d selections, want 0 (stats %+v)", st.Computed, st)
	}

	// A shard from a different collection is rejected with ErrBadSnapshot.
	foreign, err := NewCollection(map[string][]string{
		"X": {"p", "q"}, "Y": {"q", "r"}, "Z": {"p", "r"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := foreign.ImportSelectionCache(bytes.NewReader(shard.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("foreign shard: err %v, want ErrBadSnapshot", err)
	}
	// So is garbage.
	if _, err := cold.ImportSelectionCache(strings.NewReader("not a shard")); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("garbage shard: err %v, want ErrBadSnapshot", err)
	}
}

// TestSnapshotCarriesMemoDelta pins the migration-warming layer: a session
// snapshot taken under shared selection carries the memo entries along its
// own path, and restoring it on a cold twin warms the twin's memo — first
// question identical, served from the imported entries.
func TestSnapshotCarriesMemoDelta(t *testing.T) {
	src, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	name := src.Names()[0]
	oracle, err := src.TargetOracle(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := src.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Answer two questions so the trail has entries, then snapshot.
	for i := 0; i < 2 && !s.Done(); i++ {
		q, done := s.Next()
		if done {
			break
		}
		if err := s.Answer(oracle.Answer(q.Entity)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	dst, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := dst.RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	if st := dst.SelectionCacheStats(); st.Entries == 0 {
		t.Fatalf("restore imported no memo entries: %+v", st)
	}
	// Both sessions finish with identical remaining questions.
	dstOracle, err := dst.TargetOracle(name)
	if err != nil {
		t.Fatal(err)
	}
	srcRest := driveSession(t, s, oracle)
	dstRest := driveSession(t, restored, dstOracle)
	if !reflect.DeepEqual(srcRest, dstRest) {
		t.Fatalf("restored session asked %v, original asked %v", dstRest, srcRest)
	}

	// A snapshot taken under WithSharedSelection(false) has no delta and
	// still restores — on either configuration.
	plain, err := src.NewSession(nil, WithSharedSelection(false))
	if err != nil {
		t.Fatal(err)
	}
	psnap, err := plain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.RestoreSession(psnap); err != nil {
		t.Fatal(err)
	}
}
