package setdiscovery

import (
	"errors"
	"fmt"

	"setdiscovery/internal/dataset"
	"setdiscovery/internal/discovery"
	"setdiscovery/internal/strategy"
)

// Seed is the starting point of one batch member: its initial example
// entities (Algorithm 2 line 1). An empty Initial starts from the whole
// collection.
type Seed struct {
	Initial []string
}

// BatchStats reports how much selection and partitioning work a Batch
// shared across its members instead of recomputing per member.
type BatchStats = discovery.BatchStats

// Batch runs N resumable discovery sessions over one collection through a
// shared-selection scheduler: members whose answers have narrowed them to
// the same candidate-set state share one strategy selection and one
// partition computation per round, instead of each paying the full
// selection cost as N independent Sessions would. Every member still asks
// exactly the questions its own solo Session would ask — sharing is an
// optimisation, never a behaviour change (test-pinned).
//
// The protocol is round-based: fetch each live member's Question, apply the
// answers with Answer (or AnswerMember calls followed by EndRound), repeat
// until Done. Members may progress at different speeds; a member whose
// answers diverge from its siblings simply stops sharing their work.
//
// A Batch serves one caller: its methods (and any interleaved use of the
// underlying sessions) must be externally serialised. Any number of Batches
// and Sessions may run concurrently over one shared Collection.
type Batch struct {
	c *Collection
	b *discovery.Batch

	// cfg is the configuration the batch was created under, embedded in
	// Snapshot so RestoreBatch rebuilds identical options.
	cfg config
}

// NewBatch starts one suspended discovery session per seed, all with the
// same options, scheduled together so members at equal states share
// selection and partition work (the batch analogue of NewSession). A seed
// naming an unknown entity fails construction with ErrNoCandidates; a seed
// whose examples no set contains yields a member that is immediately done
// and reports ErrNoCandidates from Result, mirroring Discover.
func (c *Collection) NewBatch(seeds []Seed, opts ...Option) (*Batch, error) {
	if len(seeds) == 0 {
		return nil, errors.New("setdiscovery: NewBatch requires at least one seed")
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	o := discoveryOptions(cfg, nil)
	var f strategy.Factory
	if cfg.groupStrategy != "" {
		// Group batches mint one shared group-strategy instance; members are
		// externally serialised, so sharing its scratch is safe, and the
		// entity-strategy factory stays nil.
		gf, err := c.groupFactory(cfg)
		if err != nil {
			return nil, err
		}
		o.Group = gf.New()
	} else {
		var err error
		if f, err = c.factory(cfg); err != nil {
			return nil, err
		}
	}
	inits := make([][]dataset.Entity, len(seeds))
	for i, seed := range seeds {
		init, err := c.lookupInitial(seed.Initial)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", i, err)
		}
		inits[i] = init
	}
	b, err := discovery.NewBatch(c.c, inits, f, o)
	if err != nil {
		return nil, err
	}
	return &Batch{c: c, b: b, cfg: cfg}, nil
}

// Len returns the number of members.
func (b *Batch) Len() int { return b.b.Len() }

// member returns the i-th member session; like indexing a slice, an
// out-of-range member is a programming error and panics. The answering
// path (AnswerMember, Answer) returns an error instead, because there the
// index typically arrives from a wire request.
func (b *Batch) member(i int) *discovery.Session {
	if i < 0 || i >= b.b.Len() {
		panic(fmt.Sprintf("setdiscovery: batch has no member %d (Len %d)", i, b.b.Len()))
	}
	return b.b.Member(i)
}

// Question returns member i's pending question; done is true once that
// member has finished. Like Session.Next it is idempotent. It panics when
// i is out of range, as do the other read accessors.
func (b *Batch) Question(i int) (Question, bool) {
	m := b.member(i)
	if set, ok := m.PendingConfirm(); ok {
		return Question{Confirm: set.Name}, false
	}
	if members, sem, ok := m.PendingSubset(); ok {
		return subsetQuestion(b.c.c, members, sem), false
	}
	e, done := m.Next()
	if done {
		return Question{}, true
	}
	return Question{Entity: b.c.c.EntityName(e)}, false
}

// MemberDone reports whether member i has finished.
func (b *Batch) MemberDone(i int) bool { return b.member(i).Done() }

// MemberQuestions returns the number of questions member i has been asked
// so far (cheap: no result snapshot is taken).
func (b *Batch) MemberQuestions(i int) int { return b.member(i).Questions() }

// Done reports whether every member has finished.
func (b *Batch) Done() bool { return b.b.Done() }

// MemberAnswer pairs a member index with its reply for Batch.Answer.
type MemberAnswer struct {
	Member int
	Answer Answer
}

// Answer applies one round of replies — at most one per live member — and
// releases the round's shared state. It stops at the first invalid entry
// (member out of range, or answering a finished member); replies already
// applied stay applied. Serving layers that need per-member error reporting
// use AnswerMember and EndRound directly.
func (b *Batch) Answer(answers ...MemberAnswer) error {
	defer b.b.EndRound()
	for _, ma := range answers {
		if err := b.AnswerMember(ma.Member, ma.Answer); err != nil {
			return err
		}
	}
	return nil
}

// AnswerMember applies one member's reply without ending the round, so a
// caller applying many replies shares one selection/partition computation
// per distinct state. Call EndRound after the last reply of a round.
func (b *Batch) AnswerMember(i int, a Answer) error {
	if i < 0 || i >= b.b.Len() {
		return fmt.Errorf("setdiscovery: batch has no member %d", i)
	}
	if err := b.b.Answer(i, a); err != nil {
		return fmt.Errorf("member %d: %w", i, err)
	}
	return nil
}

// EndRound releases the selection and partition results shared since the
// last EndRound. Batch.Answer calls it automatically; callers stepping
// members via AnswerMember call it once per round. Skipping it costs
// memory, never correctness.
func (b *Batch) EndRound() { b.b.EndRound() }

// Result returns member i's outcome: final once the member is done,
// otherwise a progress snapshot, with the same semantics as Session.Result
// (including ErrNoCandidates / ErrContradiction for failed members).
func (b *Batch) Result(i int) (*Result, error) {
	res, err := b.member(i).Result()
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

// Stats returns the scheduler's amortisation counters: selections and
// partitions computed versus served from the shared round memos.
func (b *Batch) Stats() BatchStats { return b.b.Stats() }
