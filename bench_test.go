// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact — see DESIGN.md §3 for the mapping), plus the
// ablation benchmarks for the design choices called out in DESIGN.md §4.
//
// Run everything:      go test -bench=. -benchmem
// One artifact:        go test -bench=BenchmarkFig8a -benchmem
// Paper-scale numbers: use cmd/experiments -full instead; benchmarks run
// the Quick configuration so the whole suite finishes in minutes.
package setdiscovery

import (
	"fmt"
	"runtime"
	"testing"

	"setdiscovery/internal/cost"
	"setdiscovery/internal/dataset"
	"setdiscovery/internal/discovery"
	"setdiscovery/internal/experiments"
	"setdiscovery/internal/rng"
	"setdiscovery/internal/strategy"
	"setdiscovery/internal/synth"
	"setdiscovery/internal/testutil"
	"setdiscovery/internal/tree"
)

// benchExperiment runs one experiment per iteration and reports its table
// on the first iteration under -v.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			var sb stringsBuilder
			if err := res.Table.Render(&sb); err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + sb.String())
		}
	}
}

// stringsBuilder avoids importing strings solely for the Builder.
type stringsBuilder struct{ buf []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
func (s *stringsBuilder) String() string { return string(s.buf) }

// --- one benchmark per paper artifact (DESIGN.md §3) ---

func BenchmarkTable1a(b *testing.B) { benchExperiment(b, "table1a") }
func BenchmarkTable1b(b *testing.B) { benchExperiment(b, "table1b") }
func BenchmarkTable1c(b *testing.B) { benchExperiment(b, "table1c") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkFig3(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4a(b *testing.B)   { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)   { benchExperiment(b, "fig4b") }
func BenchmarkFig5(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)   { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)   { benchExperiment(b, "fig8b") }
func BenchmarkSec532(b *testing.B)  { benchExperiment(b, "sec532") }
func BenchmarkSec533(b *testing.B)  { benchExperiment(b, "sec533") }

// --- shared fixtures for the ablation benchmarks ---

// benchCollection is a mid-size synthetic collection (200 sets, α=0.9).
func benchCollection(b *testing.B) *dataset.Collection {
	b.Helper()
	c, err := synth.Generate(synth.Params{
		N: 200, SizeMin: 50, SizeMax: 60, Alpha: 0.9, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// --- ablations (DESIGN.md §4) ---

// BenchmarkPruningAblation measures the contribution of each pruning site
// of Algorithm 1 to root entity selection.
func BenchmarkPruningAblation(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	variants := []struct {
		name string
		mk   func() *strategy.KLP
	}{
		{"full-pruning", func() *strategy.KLP { return strategy.NewKLP(cost.AD, 2) }},
		{"no-sort-prune", func() *strategy.KLP { return strategy.NewKLP(cost.AD, 2).DisableSortPrune() }},
		{"no-ul-prune", func() *strategy.KLP { return strategy.NewKLP(cost.AD, 2).DisableULPrune() }},
		{"no-pruning", func() *strategy.KLP {
			return strategy.NewKLP(cost.AD, 2).DisableSortPrune().DisableULPrune()
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.mk().Select(sub); !ok {
					b.Fatal("selection failed")
				}
			}
		})
	}
}

// BenchmarkGainKMemo contrasts unpruned gain-k with its memoised variant,
// showing the paper's speedup is not mere caching.
func BenchmarkGainKMemo(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strategy.NewGainK(2).Select(sub)
		}
	})
	b.Run("memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strategy.NewGainKMemo(2).Select(sub)
		}
	})
	b.Run("klp-pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strategy.NewKLP(cost.AD, 2).Select(sub)
		}
	})
}

// BenchmarkMemoKey measures the legacy canonical subset-key encoding the
// Algorithm 1 cache used before fingerprints (kept as the baseline the
// fingerprint win is measured against; see BenchmarkFingerprint).
func BenchmarkMemoKey(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sub.Key(buf[:0])
	}
	_ = buf
}

// BenchmarkFingerprint measures the 128-bit subset fingerprint that keys the
// concurrency-safe selection caches — compare ns/op and allocs/op against
// BenchmarkMemoKey (string keys additionally pay a map-key string copy per
// store, which this micro pair does not even charge).
func BenchmarkFingerprint(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sub.Fingerprint()
	}
}

// BenchmarkBuildParallel measures offline construction (Algorithm 3) across
// worker counts, reporting the shared lookahead cache's hit rate and
// allocation profile. The tree is identical at every width; only wall-clock
// changes. The unpooled-workers-1 variant runs the original allocating
// build (no scratch arenas, no bitset pool) as the baseline the pooled
// numbers are compared against — the B/op delta is this PR's acceptance
// criterion.
func BenchmarkBuildParallel(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	workers := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		workers = append(workers, p)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var sel *strategy.KLP
			for i := 0; i < b.N; i++ {
				sel = strategy.NewKLP(cost.AD, 2)
				if _, err := tree.Build(sub, sel, tree.WithParallelism(w)); err != nil {
					b.Fatal(err)
				}
			}
			st := sel.CacheStats()
			b.ReportMetric(st.HitRate()*100, "cachehit%")
		})
	}
	b.Run("unpooled-workers-1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sel := strategy.NewKLP(cost.AD, 2).DisableScratch()
			if _, err := tree.Build(sub, sel, tree.WithParallelism(1), tree.WithPooling(false)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSelectSteadyState measures one full k-LP root selection with a
// cold lookahead cache but warm per-instance scratch — the steady state of
// a long-lived worker whose every node allocation is served by its arena.
// The unpooled variant is the original allocating hot path; compare B/op.
// (The cache reset is shared overhead in both variants; without it every
// iteration after the first would be a pure cache hit.)
func BenchmarkSelectSteadyState(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	variants := []struct {
		name string
		f    strategy.Factory
	}{
		{"pooled", strategy.NewKLP(cost.AD, 2)},
		{"unpooled", strategy.NewKLP(cost.AD, 2).DisableScratch()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			sel := v.f.New().(*strategy.KLP)
			if _, ok := sel.Select(sub); !ok { // size the scratch before timing
				b.Fatal("selection failed")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel.ResetCache()
				if _, ok := sel.Select(sub); !ok {
					b.Fatal("selection failed")
				}
			}
		})
	}
}

// BenchmarkSessionSteadyState measures a whole discovery session per
// iteration over a shared factory — the serving-layer steady state where
// scratch arenas, the session subset recycling and the warm lookahead
// cache all apply.
func BenchmarkSessionSteadyState(b *testing.B) {
	c := benchCollection(b)
	f := strategy.NewKLP(cost.AD, 2)
	r := rng.New(17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := c.Set(r.Intn(c.Len()))
		res, err := discovery.Run(c, nil, discovery.TargetOracle{Target: target},
			discovery.Options{Strategy: f.New()})
		if err != nil {
			b.Fatal(err)
		}
		if res.Target != target {
			b.Fatal("discovery missed")
		}
	}
}

// BenchmarkBatchDiscovery measures the batch scheduler's amortisation: 64
// concurrent sessions with identical seeds and identical answers cost one
// selection computation per round in a Batch ("selcomp/sess" ≈ a single
// session's count) versus 64× as independent sessions. The mixed variant
// gives every member its own target, so states diverge round by round and
// sharing degrades gracefully instead of vanishing. Compare ns/op across
// the variants for the wall-clock side of the same story.
func BenchmarkBatchDiscovery(b *testing.B) {
	c := benchCollection(b)
	const n = 64
	target := c.Set(c.Len() - 1)

	driveBatch := func(b *testing.B, bt *discovery.Batch, oracles []discovery.Oracle) {
		b.Helper()
		for !bt.Done() {
			for i := 0; i < bt.Len(); i++ {
				m := bt.Member(i)
				if m.Done() {
					continue
				}
				if set, ok := m.PendingConfirm(); ok {
					a := discovery.No
					if conf, can := oracles[i].(discovery.Confirmer); can && conf.Confirm(set) {
						a = discovery.Yes
					}
					if err := m.Answer(a); err != nil {
						b.Fatal(err)
					}
					continue
				}
				e, done := m.Next()
				if done {
					continue
				}
				if err := m.Answer(oracles[i].Answer(e)); err != nil {
					b.Fatal(err)
				}
			}
			bt.EndRound()
		}
	}

	b.Run("batch-64-identical", func(b *testing.B) {
		f := strategy.NewKLP(cost.AD, 2)
		oracles := make([]discovery.Oracle, n)
		for i := range oracles {
			oracles[i] = discovery.TargetOracle{Target: target}
		}
		b.ReportAllocs()
		var st discovery.BatchStats
		for i := 0; i < b.N; i++ {
			bt, err := discovery.NewBatch(c, make([][]dataset.Entity, n), f, discovery.Options{})
			if err != nil {
				b.Fatal(err)
			}
			driveBatch(b, bt, oracles)
			st = bt.Stats()
		}
		b.ReportMetric(float64(st.Selections)/n, "selcomp/sess")
		b.ReportMetric(float64(st.Selections+st.SelectionsShared)/float64(st.Selections), "amortisation")
	})

	b.Run("batch-64-mixed", func(b *testing.B) {
		f := strategy.NewKLP(cost.AD, 2)
		oracles := make([]discovery.Oracle, n)
		for i := range oracles {
			oracles[i] = discovery.TargetOracle{Target: c.Set(i % c.Len())}
		}
		b.ReportAllocs()
		var st discovery.BatchStats
		for i := 0; i < b.N; i++ {
			bt, err := discovery.NewBatch(c, make([][]dataset.Entity, n), f, discovery.Options{})
			if err != nil {
				b.Fatal(err)
			}
			driveBatch(b, bt, oracles)
			st = bt.Stats()
		}
		b.ReportMetric(float64(st.Selections)/n, "selcomp/sess")
		b.ReportMetric(float64(st.Selections+st.SelectionsShared)/float64(st.Selections), "amortisation")
	})

	b.Run("independent-64", func(b *testing.B) {
		f := strategy.NewKLP(cost.AD, 2)
		b.ReportAllocs()
		selections := 0
		for i := 0; i < b.N; i++ {
			selections = 0
			for j := 0; j < n; j++ {
				res, err := discovery.Run(c, nil, discovery.TargetOracle{Target: target},
					discovery.Options{Strategy: f.New()})
				if err != nil {
					b.Fatal(err)
				}
				// One selection computation per interaction: the
				// independent-session baseline for selcomp/sess.
				selections += res.Interactions
			}
		}
		b.ReportMetric(float64(selections)/n, "selcomp/sess")
	})
}

// BenchmarkSharedSelection measures the collection-wide selection memo: 64
// *solo* sessions (no batch scheduler) driven one after another, shared
// versus unshared. With identical targets every session after the first
// walks a fully memoised question path, so selections computed per session
// collapse toward zero ("selcomp/sess"); divergent targets share only the
// popular prefix near the root. The -1 variants pin the single-session
// overhead of routing through the memo (the ≤5% regression budget).
func BenchmarkSharedSelection(b *testing.B) {
	c := benchCollection(b)
	const n = 64

	run := func(b *testing.B, memo *discovery.SelectionMemo, targets []*dataset.Set) int {
		b.Helper()
		selections := 0
		f := strategy.NewKLP(cost.AD, 2)
		for _, target := range targets {
			res, err := discovery.Run(c, nil, discovery.TargetOracle{Target: target},
				discovery.Options{Strategy: f.New(), Memo: memo, MemoAux: 1})
			if err != nil {
				b.Fatal(err)
			}
			if res.Target != target {
				b.Fatal("discovery missed")
			}
			// The unshared baseline computes one selection per interaction;
			// shared runs report the memo's own Computed counter instead.
			selections += res.Interactions
		}
		return selections
	}

	identical := make([]*dataset.Set, n)
	divergent := make([]*dataset.Set, n)
	for i := range identical {
		identical[i] = c.Set(c.Len() - 1)
		divergent[i] = c.Set(i % c.Len())
	}

	variants := []struct {
		name    string
		shared  bool
		targets []*dataset.Set
	}{
		{"shared-64-identical", true, identical},
		{"unshared-64-identical", false, identical},
		{"shared-64-divergent", true, divergent},
		{"unshared-64-divergent", false, divergent},
		{"shared-1", true, identical[:1]},
		{"unshared-1", false, identical[:1]},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			sessions := float64(len(v.targets))
			var selcomp float64
			for i := 0; i < b.N; i++ {
				if v.shared {
					memo := discovery.NewSelectionMemo(discovery.DefaultMemoBound)
					run(b, memo, v.targets)
					selcomp = float64(memo.Stats().Computed)
				} else {
					selcomp = float64(run(b, nil, v.targets))
				}
			}
			b.ReportMetric(selcomp/sessions, "selcomp/sess")
		})
	}
}

// BenchmarkPartition measures sub-collection splitting via the inverted
// index (the inner loop of every lookahead step).
func BenchmarkPartition(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	infos := sub.InformativeEntities()
	if len(infos) == 0 {
		b.Fatal("no informative entities")
	}
	e := infos[len(infos)/2].Entity
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.Partition(e)
	}
}

// BenchmarkInformativeEntities measures per-node candidate counting.
func BenchmarkInformativeEntities(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.InformativeEntities()
	}
}

// BenchmarkCeilNLog2 measures the exact ⌈n·log2 n⌉ used by every AD bound.
func BenchmarkCeilNLog2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cost.CeilNLog2(i%100000 + 2)
	}
}

// BenchmarkTreeBuild measures full offline construction (Algorithm 3) with
// the sequential builder, per strategy — the paper's single-threaded cost.
// BenchmarkBuildParallel covers worker-pool scaling.
func BenchmarkTreeBuild(b *testing.B) {
	c := benchCollection(b)
	sub := c.All()
	for _, bc := range []struct {
		name string
		mk   func() strategy.Factory
	}{
		{"infogain", func() strategy.Factory { return strategy.InfoGain{} }},
		{"klp-k2", func() strategy.Factory { return strategy.NewKLP(cost.AD, 2) }},
		{"klple-k3-q10", func() strategy.Factory { return strategy.NewKLPLE(cost.AD, 3, 10) }},
		{"klplve-k3-q10", func() strategy.Factory { return strategy.NewKLPLVE(cost.AD, 3, 10) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tree.Build(sub, bc.mk(), tree.WithParallelism(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiscovery measures one online discovery (Algorithm 2) end to end.
func BenchmarkDiscovery(b *testing.B) {
	c := benchCollection(b)
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := c.Set(r.Intn(c.Len()))
		res, err := discovery.Run(c, nil, discovery.TargetOracle{Target: target},
			discovery.Options{Strategy: strategy.NewKLP(cost.AD, 2)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Target != target {
			b.Fatal("discovery missed")
		}
	}
}

// BenchmarkPublicAPI measures the facade on the paper's running example.
func BenchmarkPublicAPI(b *testing.B) {
	names, elems := testutil.PaperSets()
	sets := make(map[string][]string, len(names))
	for i, n := range names {
		sets[n] = elems[i]
	}
	c, err := NewCollection(sets)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := c.TargetOracle("S5")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Discover(nil, oracle, WithK(3))
		if err != nil || res.Target != "S5" {
			b.Fatal(err, res)
		}
	}
}
