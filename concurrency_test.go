package setdiscovery

import (
	"fmt"
	"sync"
	"testing"
)

// syntheticSets builds a deterministic collection of n unique sets for the
// multi-session tests: set i holds the multiples tagged by i's bits plus a
// distinguishing marker, giving plenty of shared entities across sets.
func syntheticSets(n int) map[string][]string {
	sets := make(map[string][]string, n)
	for i := 0; i < n; i++ {
		var elems []string
		for b := 0; b < 10; b++ {
			if i&(1<<b) != 0 {
				elems = append(elems, fmt.Sprintf("bit%d", b))
			}
		}
		elems = append(elems, fmt.Sprintf("marker%d", i))
		sets[fmt.Sprintf("S%03d", i)] = elems
	}
	return sets
}

// One shared Collection must support many concurrent Discover sessions —
// including sessions sharing a strategy configuration (and therefore a
// lookahead cache) and sessions with different configurations. Run with
// -race; CI does.
func TestConcurrentDiscoverSharedCollection(t *testing.T) {
	c, err := NewCollection(syntheticSets(64))
	if err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	const sessions = 16
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			target := names[(g*13)%len(names)]
			oracle, err := c.TargetOracle(target)
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			opts := []Option{WithK(2)}
			if g%4 == 3 {
				opts = []Option{WithStrategy("klplve"), WithK(3), WithQ(5)}
			}
			res, err := c.Discover(nil, oracle, opts...)
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			if res.Target != target {
				t.Errorf("session %d: discovered %q, want %q", g, res.Target, target)
			}
		}(g)
	}
	wg.Wait()
}

// One shared Tree must support many concurrent DiscoverWithTree walks, and
// they may interleave with fresh Discover sessions on the same collection.
func TestConcurrentDiscoverWithTreeSharedTree(t *testing.T) {
	c, err := NewCollection(syntheticSets(64))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.BuildTree(WithK(2), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	const sessions = 16
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			target := names[(g*7)%len(names)]
			oracle, err := c.TargetOracle(target)
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			var res *Result
			if g%2 == 0 {
				res, err = c.DiscoverWithTree(tr, oracle)
			} else {
				res, err = c.Discover(nil, oracle)
			}
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			if res.Target != target {
				t.Errorf("session %d: discovered %q, want %q", g, res.Target, target)
			}
		}(g)
	}
	wg.Wait()
}

// BuildTree must be deterministic across parallelism levels through the
// public API as well.
func TestBuildTreeParallelismDeterministic(t *testing.T) {
	c, err := NewCollection(syntheticSets(48))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.BuildTree(WithK(2), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 0} {
		par, err := c.BuildTree(WithK(2), WithParallelism(n))
		if err != nil {
			t.Fatalf("parallelism %d: %v", n, err)
		}
		if par.Render() != seq.Render() {
			t.Errorf("parallelism %d: tree differs from sequential build", n)
		}
		if par.AvgDepth() != seq.AvgDepth() || par.Height() != seq.Height() {
			t.Errorf("parallelism %d: cost mismatch", n)
		}
	}
}
