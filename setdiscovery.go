// Package setdiscovery implements interactive set discovery (Hasnat &
// Rafiei, EDBT 2023): given a closed collection of sets and a few example
// members of a desired target set, find the target with as few yes/no
// membership questions as possible.
//
// The search builds (implicitly or explicitly) a binary decision tree whose
// leaves are the candidate sets and whose internal nodes ask "is entity e in
// your set?". Entity selection uses the paper's k-step lookahead lower
// bounds with pruning (k-LP and its bounded variants k-LPLE/k-LPLVE), which
// match or beat the classical information-gain heuristic while pruning the
// lookahead search space by orders of magnitude.
//
// # Quick start
//
//	c, err := setdiscovery.NewCollection(map[string][]string{
//	    "flu":     {"fever", "cough", "fatigue"},
//	    "covid":   {"fever", "cough", "anosmia"},
//	    "allergy": {"sneezing", "itchy eyes"},
//	})
//	...
//	res, err := c.Discover([]string{"fever"}, oracle)     // ask the user
//	tr, err := c.BuildTree(setdiscovery.WithStrategy("klp"), setdiscovery.WithK(3))
//
// # Concurrency
//
// A Collection and a Tree are safe for any number of concurrent Discover,
// DiscoverWithTree and read-only calls over one shared instance: the
// underlying dataset and tree are immutable, every discovery session draws
// its own strategy instance from a per-collection factory, and the lookahead
// memo caches behind those factories are concurrency-safe and shared — work
// done by one session or tree build speeds up the next. BuildTree itself
// fans the Yes/No recursion out over a bounded worker pool (WithParallelism,
// default GOMAXPROCS) and produces output identical to the sequential build.
//
// The sub-packages under internal/ hold the full machinery: cost bounds,
// the fingerprint cache, strategy factories, tree construction, the
// discovery loop, dataset generators and the experiment harness reproducing
// the paper's evaluation.
package setdiscovery

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"setdiscovery/internal/cost"
	"setdiscovery/internal/dataset"
	"setdiscovery/internal/discovery"
	"setdiscovery/internal/grouptest"
	"setdiscovery/internal/strategy"
	"setdiscovery/internal/tree"
)

// Metric selects what a decision tree optimises.
type Metric = cost.Metric

const (
	// AverageDepth minimises the expected number of questions (paper
	// metric AD).
	AverageDepth Metric = cost.AD
	// Height minimises the worst-case number of questions (paper metric H).
	Height Metric = cost.H
)

// Collection is an immutable collection of uniquely-named, unique sets of
// string entities — the closed search space of set discovery. It is safe
// for concurrent use: any number of goroutines may run Discover,
// DiscoverWithTree, BuildTree and the read accessors over one shared
// instance. Sessions with equal strategy options share a lookahead cache,
// so concurrent and repeated discoveries amortise each other's work.
type Collection struct {
	c *dataset.Collection

	// factories caches one strategy factory per distinct strategy
	// configuration, so every session and build over this collection with
	// the same options shares that factory's fingerprint caches.
	mu        sync.Mutex
	factories map[strategyKey]strategy.Factory

	// memo is the collection-wide selection memo shared by every solo
	// session (and Discover call) over this collection, regardless of
	// strategy configuration — an options hash in the key keeps differently
	// configured sessions from sharing entries. Lazily created; the entry
	// bound is fixed by whichever configuration touches it first.
	memo *discovery.SelectionMemo
}

// strategyKey identifies a strategy configuration; options that do not
// affect entity selection (batching, halting, backtracking) are excluded.
// The cache bound is part of the key: a bounded and an unbounded factory
// must not share one cache.
type strategyKey struct {
	name   string
	metric Metric
	k, q   int
	bound  int
}

// factory returns the shared strategy factory for cfg, creating it on first
// use. The name is normalised once so that the cache key and the created
// strategy always agree — "KLP" and "klp" share one factory and are
// validated identically no matter which spelling arrives first.
func (c *Collection) factory(cfg config) (strategy.Factory, error) {
	name := strings.ToLower(cfg.strategyName)
	key := strategyKey{name, cfg.metric, cfg.k, cfg.q, cfg.cacheBound}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.factories[key]; ok {
		return f, nil
	}
	f, err := strategy.New(name, cfg.metric, cfg.k, cfg.q)
	if err != nil {
		return nil, err
	}
	if cfg.cacheBound > 0 {
		// Applied before the factory is shared or mints any sibling, so
		// the whole lineage runs against the bounded cache. Strategies
		// without a cache (the greedy baselines) simply ignore the option.
		if b, ok := f.(interface{ SetCacheBound(int) }); ok {
			b.SetCacheBound(cfg.cacheBound)
		}
	}
	if c.factories == nil {
		c.factories = make(map[strategyKey]strategy.Factory)
	}
	c.factories[key] = f
	return f, nil
}

// groupFactory builds the group-testing strategy factory for cfg, resolving
// constraint entity names against this collection. Group factories are not
// cached: unlike the lookahead strategies they hold no shared memo state, so
// minting one per session costs nothing worth amortising.
func (c *Collection) groupFactory(cfg config) (grouptest.Factory, error) {
	constraints := make([]grouptest.Constraint, 0, len(cfg.groupConstraints))
	for _, pair := range cfg.groupConstraints {
		ifID, ok := c.c.Dict().Lookup(pair[0])
		if !ok {
			return nil, fmt.Errorf("setdiscovery: group constraint entity %q occurs in no set", pair[0])
		}
		thenID, ok := c.c.Dict().Lookup(pair[1])
		if !ok {
			return nil, fmt.Errorf("setdiscovery: group constraint entity %q occurs in no set", pair[1])
		}
		constraints = append(constraints, grouptest.Constraint{If: ifID, Then: thenID})
	}
	return grouptest.New(cfg.groupStrategy, constraints)
}

// engineOptions maps a configuration to engine options with a freshly minted
// strategy instance: a group strategy for group configurations (which bypass
// the entity-keyed selection memo), an entity strategy wired to the
// collection memo otherwise.
func (c *Collection) engineOptions(cfg config) (discovery.Options, error) {
	if cfg.groupStrategy != "" {
		gf, err := c.groupFactory(cfg)
		if err != nil {
			return discovery.Options{}, err
		}
		o := discoveryOptions(cfg, nil)
		o.Group = gf.New()
		return o, nil
	}
	f, err := c.factory(cfg)
	if err != nil {
		return discovery.Options{}, err
	}
	o := discoveryOptions(cfg, f.New())
	c.attachMemo(cfg, &o)
	return o, nil
}

// selectionMemo returns the collection-wide selection memo, creating it on
// first use with the given entry bound (≤ 0 selects the default, 1M). The
// bound is fixed at creation: later callers share the memo whatever bound
// they ask for, mirroring how a strategy factory's cache bound is fixed by
// its first configuration.
func (c *Collection) selectionMemo(bound int) *discovery.SelectionMemo {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.memo == nil {
		c.memo = discovery.NewSelectionMemo(bound)
	}
	return c.memo
}

// memoAux hashes the options that change what a selection returns — strategy
// identity and parameters plus the interaction batch size — into the
// auxiliary key word, so sessions share a memo entry exactly when they would
// compute the same result. Halting and backtracking options are deliberately
// absent: they decide when selections happen, never what they return.
func memoAux(cfg config) uint64 {
	batch := cfg.batchSize
	if batch < 1 {
		batch = 1 // 0 and 1 both mean one question per interaction
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d",
		strings.ToLower(cfg.strategyName), cfg.metric, cfg.k, cfg.q, batch)
	return h.Sum64()
}

// attachMemo wires the collection-wide selection memo into engine options
// when the configuration has shared selection on (the default).
func (c *Collection) attachMemo(cfg config, o *discovery.Options) {
	if !cfg.sharedSelection {
		return
	}
	o.Memo = c.selectionMemo(cfg.cacheBound)
	o.MemoAux = memoAux(cfg)
}

// SelectionCacheStats reports the collection-wide selection memo's
// effectiveness: how many selections were served from the memo (Hits) or
// coalesced onto a concurrent computation versus actually computed, and how
// the bounded store is doing (Entries, Evictions). Zero before any session
// ran with shared selection.
type SelectionCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Coalesced int64
	Computed  int64
	Entries   int
}

// SelectionCacheStats returns the collection's shared-selection counters.
func (c *Collection) SelectionCacheStats() SelectionCacheStats {
	c.mu.Lock()
	m := c.memo
	c.mu.Unlock()
	if m == nil {
		return SelectionCacheStats{}
	}
	st := m.Stats()
	return SelectionCacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Coalesced: st.Coalesced,
		Computed:  st.Computed,
		Entries:   st.Entries,
	}
}

// ExportSelectionCache writes a warm shard — up to max of the selection
// memo's entries, recently used first (max ≤ 0 exports everything) — in a
// versioned binary format guarded by the collection's content fingerprint.
// Import it with ImportSelectionCache on another instance serving the same
// collection (the router does this to warm a freshly added engine from a
// healthy peer) or persist it next to prebuilt trees so a restarted server
// skips the warm-up cliff. Options are applied only for their cache bound,
// should the export be what creates the memo.
func (c *Collection) ExportSelectionCache(w io.Writer, max int, opts ...Option) error {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if max <= 0 {
		max = int(^uint(0) >> 1)
	}
	_, err := w.Write(discovery.EncodeMemoShard(c.c, c.selectionMemo(cfg.cacheBound), max))
	return err
}

// ImportSelectionCache merges a shard written by ExportSelectionCache into
// the collection's selection memo and returns the number of entries
// imported. The shard must come from a collection with identical content;
// foreign or corrupted shards are rejected with ErrBadSnapshot. Options are
// applied only for their cache bound, which matters when the import is what
// creates the memo (a freshly added engine being warmed before any traffic).
func (c *Collection) ImportSelectionCache(r io.Reader, opts ...Option) (int, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	n, err := discovery.DecodeMemoShard(c.c, c.selectionMemo(cfg.cacheBound), data)
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	return n, nil
}

// NewCollection builds a collection from named element lists. Set names
// must be distinct map keys; duplicate sets (same elements under different
// names) are rejected, matching the paper's uniqueness assumption. Iteration
// order does not matter: sets are added in sorted-name order, so the same
// input always produces the same collection.
func NewCollection(sets map[string][]string) (*Collection, error) {
	if len(sets) == 0 {
		return nil, errors.New("setdiscovery: empty collection")
	}
	names := make([]string, 0, len(sets))
	for name := range sets {
		names = append(names, name)
	}
	sort.Strings(names)
	b := dataset.NewBuilder()
	for _, name := range names {
		b.Add(name, sets[name])
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Collection{c: c}, nil
}

// ReadCollection parses the tab-separated text format (one set per line:
// name, then elements; '#' comments allowed). Duplicate sets are dropped.
func ReadCollection(r io.Reader) (*Collection, error) {
	c, err := dataset.ReadText(r)
	if err != nil {
		return nil, err
	}
	return &Collection{c: c}, nil
}

// Write writes the collection in the text format.
func (c *Collection) Write(w io.Writer) error { return c.c.WriteText(w) }

// Len returns the number of sets.
func (c *Collection) Len() int { return c.c.Len() }

// Names returns the set names in collection order.
func (c *Collection) Names() []string {
	out := make([]string, c.c.Len())
	for i, s := range c.c.Sets() {
		out[i] = s.Name
	}
	return out
}

// Elements returns the sorted elements of the named set, or nil if absent.
func (c *Collection) Elements(name string) []string {
	s := c.c.FindByName(name)
	if s == nil {
		return nil
	}
	out := make([]string, len(s.Elems))
	for i, e := range s.Elems {
		out[i] = c.c.EntityName(e)
	}
	return out
}

// Internal exposes the underlying dataset collection for advanced use with
// the internal packages (benchmarks, experiment harness).
func (c *Collection) Internal() *dataset.Collection { return c.c }

// config collects option values.
type config struct {
	strategyName    string
	metric          Metric
	k, q            int
	maxQuestions    int
	batchSize       int
	parallelism     int
	cacheBound      int
	backtrack       bool
	confirm         bool
	sharedSelection bool

	// groupStrategy switches sessions to set-valued (group-testing)
	// questions; empty selects the classic entity-question mode.
	// groupConstraints are "if implies then" entity-name pairs honoured by
	// the additive strategy.
	groupStrategy    string
	groupConstraints [][2]string
}

func defaultConfig() config {
	return config{strategyName: "klp", metric: AverageDepth, k: 2, q: 10,
		sharedSelection: true}
}

// Option configures BuildTree and Discover.
type Option func(*config)

// WithStrategy selects the entity-selection strategy by name: "klp"
// (default), "klple", "klplve", "infogain", "most-even", "indg", "lb1",
// "gaink".
func WithStrategy(name string) Option { return func(c *config) { c.strategyName = name } }

// WithMetric selects the cost metric for the lookahead strategies
// (default AverageDepth).
func WithMetric(m Metric) Option { return func(c *config) { c.metric = m } }

// WithK sets the lookahead depth (default 2).
func WithK(k int) Option { return func(c *config) { c.k = k } }

// WithQ bounds the candidate entities per lookahead step for k-LPLE /
// k-LPLVE (default 10).
func WithQ(q int) Option { return func(c *config) { c.q = q } }

// WithMaxQuestions halts discovery after n questions (default unlimited).
func WithMaxQuestions(n int) Option { return func(c *config) { c.maxQuestions = n } }

// WithBatchSize asks several membership questions per interaction (§6
// multiple-choice examples).
func WithBatchSize(n int) Option { return func(c *config) { c.batchSize = n } }

// WithBacktracking enables recovery from wrong answers: the discovered set
// is confirmed with the oracle and rejections revisit earlier answers (§6).
func WithBacktracking() Option {
	return func(c *config) { c.backtrack = true; c.confirm = true }
}

// WithParallelism bounds the worker pool of BuildTree at n goroutines
// (default GOMAXPROCS; 1 forces the sequential build). The built tree is
// identical for every n. Discovery ignores the option — an interactive
// session asks one question at a time.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithCacheBound caps the strategy's shared lookahead cache at
// (approximately) n entries with clock eviction, instead of the default
// unbounded growth. Sessions and builds over one collection with equal
// options — including the bound — share one factory, so the cap is
// per-configuration, not per-session. Evicted entries are recomputed, never
// wrong: selections are identical with or without a bound. Set it in
// long-running serving processes (setdiscd exposes it as -cache-bound) so
// memory stays flat no matter how many sub-collections the workload
// touches; n ≤ 0 means unbounded.
func WithCacheBound(n int) Option {
	return func(c *config) {
		// Normalised so every "unbounded" spelling shares one factory key.
		if n < 0 {
			n = 0
		}
		c.cacheBound = n
	}
}

// WithGroupStrategy switches Discover, NewSession and NewBatch to
// set-valued (group-testing) questions: every interaction asks about a
// *subset* of entities — "does your set share an entity with S?"
// (intersects) or "is S contained in your set?" (subset-of) — and an answer
// halves the candidate space, the interaction shape of software bisection
// and contaminated-pool screening. Recognised names: "halving" (greedy
// even-split subsets, ~⌈log₂ n⌉ rounds to a single target) and "additive"
// (bisect-style multi-culprit search honouring WithGroupConstraint
// dependencies). Group sessions ignore WithStrategy, WithBatchSize and the
// shared-selection memo; the oracle must implement GroupOracle. The empty
// name restores the default entity-question mode.
func WithGroupStrategy(name string) Option {
	return func(c *config) { c.groupStrategy = name }
}

// WithGroupConstraint records the dependency "ifEntity implies thenEntity":
// any realisable set containing ifEntity also contains thenEntity (enabling
// a module enables what it depends on). The additive group strategy keeps
// its probes closed under these constraints; other strategies ignore them.
// Repeat the option for multiple constraints.
func WithGroupConstraint(ifEntity, thenEntity string) Option {
	return func(c *config) {
		c.groupConstraints = append(c.groupConstraints, [2]string{ifEntity, thenEntity})
	}
}

// WithSharedSelection toggles the collection-wide selection memo (default
// on): solo sessions and Discover calls over one collection memoise their
// strategy selections by candidate-set fingerprint, so N sessions parked at
// the same state — concurrently or over time — pay one lookahead computation
// total, with concurrent misses coalescing into a single flight. Selections
// are pure functions of the candidate set and the selection-relevant options,
// so shared results are byte-identical to unshared ones (test-pinned);
// sessions with "don't know" answers bypass the memo automatically. The memo
// is bounded (WithCacheBound, same default as the strategy caches) with clock
// eviction, so memory stays flat. Turn it off for one-shot workloads that
// would only pollute the memo, or to A/B the fabric itself.
func WithSharedSelection(on bool) Option {
	return func(c *config) { c.sharedSelection = on }
}

// Tree is a constructed decision tree over a collection. It is immutable
// and safe for concurrent use: any number of goroutines may walk one shared
// Tree via DiscoverWithTree or the read accessors.
type Tree struct {
	t *tree.Tree
	c *Collection
}

// BuildTree constructs a decision tree for the whole collection offline
// (Algorithm 3), for static collections queried repeatedly. Construction
// runs on a bounded worker pool (WithParallelism, default GOMAXPROCS) and
// is deterministic: every parallelism level yields the same tree.
func (c *Collection) BuildTree(opts ...Option) (*Tree, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	f, err := c.factory(cfg)
	if err != nil {
		return nil, err
	}
	t, err := tree.Build(c.c.All(), f, tree.WithParallelism(cfg.parallelism))
	if err != nil {
		return nil, err
	}
	return &Tree{t: t, c: c}, nil
}

// Collection returns the collection the tree was built over.
func (t *Tree) Collection() *Collection { return t.c }

// AvgDepth returns the expected number of questions under uniform targets.
func (t *Tree) AvgDepth() float64 { return t.t.AvgDepth() }

// Height returns the worst-case number of questions.
func (t *Tree) Height() int { return t.t.Height() }

// QuestionsFor returns how many questions the tree asks to reach the named
// set, or -1 when the set is not in the collection.
func (t *Tree) QuestionsFor(name string) int {
	s := t.c.c.FindByName(name)
	if s == nil {
		return -1
	}
	return t.t.Depth(s.Index)
}

// Render returns an indented text rendering of the tree.
func (t *Tree) Render() string { return t.t.Render(t.c.c) }

// WriteDOT writes the tree in Graphviz DOT format.
func (t *Tree) WriteDOT(w io.Writer) error { return t.t.WriteDOT(w, t.c.c) }

// WriteBinary persists the tree so later sessions over the same collection
// can skip construction (the paper's offline mode, §4.5).
func (t *Tree) WriteBinary(w io.Writer) error { return t.t.WriteBinary(w) }

// LoadTree reads a tree persisted with Tree.WriteBinary and re-validates it
// against this collection.
func (c *Collection) LoadTree(r io.Reader) (*Tree, error) {
	t, err := tree.ReadBinary(r, c.c)
	if err != nil {
		return nil, err
	}
	return &Tree{t: t, c: c}, nil
}

// DiscoverWithTree runs discovery along a precomputed tree: each step only
// follows one branch, so per-question latency is constant. "Don't know"
// answers stop the walk with the remaining subtree as candidates.
func (c *Collection) DiscoverWithTree(t *Tree, oracle Oracle) (*Result, error) {
	res, err := discovery.FollowTree(c.c, t.t, oracleAdapter{c: c.c, o: oracle})
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

// Answer is a reply to a membership question.
type Answer = discovery.Answer

const (
	// No: the entity is not in the target set.
	No = discovery.No
	// Yes: the entity is in the target set.
	Yes = discovery.Yes
	// Unknown: the user cannot tell; the entity is never asked again.
	Unknown = discovery.Unknown
)

// Oracle answers membership questions about string entities.
type Oracle interface {
	Answer(entity string) Answer
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(entity string) Answer

// Answer implements Oracle.
func (f OracleFunc) Answer(entity string) Answer { return f(entity) }

// TargetOracle returns an oracle that answers truthfully for the named set —
// useful for simulations and tests. It fails when the set is unknown. The
// oracle also implements Confirmer, accepting only the named set, so that
// WithBacktracking sessions driven by it actually exercise the §6
// confirm-and-recover step instead of silently accepting any candidate.
func (c *Collection) TargetOracle(name string) (Oracle, error) {
	s := c.c.FindByName(name)
	if s == nil {
		return nil, fmt.Errorf("setdiscovery: no set named %q", name)
	}
	return targetOracle{c: c.c, s: s}, nil
}

// targetOracle is the truthful simulated user behind Collection.TargetOracle.
type targetOracle struct {
	c *dataset.Collection
	s *dataset.Set
}

// Answer implements Oracle.
func (o targetOracle) Answer(entity string) Answer {
	id, ok := o.c.Dict().Lookup(entity)
	if !ok {
		return No
	}
	if o.s.Contains(id) {
		return Yes
	}
	return No
}

// Confirm implements Confirmer: only the oracle's own set is accepted (set
// names are unique within a collection), mirroring discovery.TargetOracle.
func (o targetOracle) Confirm(setName string) bool { return setName == o.s.Name }

// AnswerSubset implements GroupOracle truthfully: under "intersects" the
// answer is Yes when any member is in the target set, under "subset-of" when
// every member is. Unknown entity names and unknown semantics are treated as
// names the target cannot contain.
func (o targetOracle) AnswerSubset(members []string, semantics string) Answer {
	sem, err := grouptest.ParseSemantics(semantics)
	if err != nil {
		sem = grouptest.SubsetOfTarget // unknown semantics: strictest reading
	}
	for _, name := range members {
		id, ok := o.c.Dict().Lookup(name)
		contains := ok && o.s.Contains(id)
		if sem == grouptest.Intersects && contains {
			return Yes
		}
		if sem == grouptest.SubsetOfTarget && !contains {
			return No
		}
	}
	if sem == grouptest.Intersects {
		return No
	}
	return Yes
}

// Result reports a discovery run.
type Result struct {
	// Target is the uniquely discovered set name, empty when discovery
	// halted with several candidates.
	Target string
	// Candidates are the set names still consistent with all answers.
	Candidates []string
	// Questions is the number of membership questions answered.
	Questions int
	// Interactions counts user round-trips (differs from Questions when
	// batching).
	Interactions int
	// Backtracks counts answer revisions during error recovery.
	Backtracks int
	// SelectionTime is the computation time spent choosing questions.
	SelectionTime time.Duration
}

// ErrNoCandidates is returned when no set contains all initial examples.
var ErrNoCandidates = discovery.ErrNoCandidates

// ErrContradiction is returned when answers rule out every set and
// backtracking is off or exhausted.
var ErrContradiction = discovery.ErrContradiction

// Discover runs the interactive loop (Algorithm 2): filter the collection
// to supersets of the initial examples, then ask the oracle
// strategy-selected membership questions until one candidate remains or a
// halt condition fires. Unknown initial examples yield ErrNoCandidates
// (no set can contain them).
func (c *Collection) Discover(initial []string, oracle Oracle, opts ...Option) (*Result, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	// Each session owns a strategy instance; instances from one factory
	// share the concurrency-safe lookahead cache, so concurrent sessions
	// are race-free yet amortise each other's selection work.
	o, err := c.engineOptions(cfg)
	if err != nil {
		return nil, err
	}
	init, err := c.lookupInitial(initial)
	if err != nil {
		return nil, err
	}
	res, err := discovery.Run(c.c, init, c.wrapOracle(oracle), o)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

// lookupInitial resolves initial example names to entity IDs; an unknown
// name yields ErrNoCandidates (no set can contain it).
func (c *Collection) lookupInitial(initial []string) ([]dataset.Entity, error) {
	init := make([]dataset.Entity, 0, len(initial))
	for _, s := range initial {
		id, ok := c.c.Dict().Lookup(s)
		if !ok {
			return nil, fmt.Errorf("%w: entity %q occurs in no set", ErrNoCandidates, s)
		}
		init = append(init, id)
	}
	return init, nil
}

// convertResult maps an internal discovery result to the public shape.
func convertResult(res *discovery.Result) *Result {
	out := &Result{
		Candidates:    res.Candidates.Names(),
		Questions:     res.Questions,
		Interactions:  res.Interactions,
		Backtracks:    res.Backtracks,
		SelectionTime: res.SelectionTime,
	}
	if res.Target != nil {
		out.Target = res.Target.Name
	}
	return out
}

// GroupOracle answers set-valued questions (WithGroupStrategy sessions):
// semantics is "intersects" ("does your set share at least one of members?")
// or "subset-of" ("is every member in your set?"). Discover with a group
// strategy requires its oracle to implement this interface.
type GroupOracle interface {
	Oracle
	AnswerSubset(members []string, semantics string) Answer
}

// wrapOracle bridges a public oracle to the engine, forwarding the group
// capability only when the caller's oracle actually has it — so the engine's
// "group session requires a GroupOracle" check reflects the real oracle.
func (c *Collection) wrapOracle(o Oracle) discovery.Oracle {
	base := oracleAdapter{c: c.c, o: o}
	if g, ok := o.(GroupOracle); ok {
		return groupOracleAdapter{oracleAdapter: base, g: g}
	}
	return base
}

// oracleAdapter bridges string oracles to entity-ID oracles, forwarding the
// optional confirmation capability.
type oracleAdapter struct {
	c *dataset.Collection
	o Oracle
}

func (a oracleAdapter) Answer(e dataset.Entity) discovery.Answer {
	return a.o.Answer(a.c.EntityName(e))
}

// Confirmer mirrors discovery.Confirmer for string oracles.
type Confirmer interface {
	Confirm(setName string) bool
}

// Confirm implements discovery.Confirmer when the wrapped oracle supports
// confirmation; otherwise every set is accepted.
func (a oracleAdapter) Confirm(s *dataset.Set) bool {
	if c, ok := a.o.(Confirmer); ok {
		return c.Confirm(s.Name)
	}
	return true
}

// groupOracleAdapter additionally bridges the set-valued question
// capability: entity IDs become names, semantics its wire string.
type groupOracleAdapter struct {
	oracleAdapter
	g GroupOracle
}

// AnswerSubset implements discovery.GroupOracle.
func (a groupOracleAdapter) AnswerSubset(members []dataset.Entity, sem grouptest.Semantics) discovery.Answer {
	names := make([]string, len(members))
	for i, e := range members {
		names[i] = a.c.EntityName(e)
	}
	return a.g.AnswerSubset(names, sem.String())
}
