package setdiscovery

import (
	"errors"
	"reflect"
	"testing"
)

// recordingOracle wraps an oracle and logs the entities it was asked,
// forwarding confirmation support.
type recordingOracle struct {
	inner Oracle
	asked []string
}

func (r *recordingOracle) Answer(entity string) Answer {
	r.asked = append(r.asked, entity)
	return r.inner.Answer(entity)
}

func (r *recordingOracle) Confirm(setName string) bool {
	if c, ok := r.inner.(Confirmer); ok {
		return c.Confirm(setName)
	}
	return true
}

// driveSession answers a session's questions from an oracle, returning the
// asked entities in order.
func driveSession(t *testing.T, s *Session, o Oracle) []string {
	t.Helper()
	var asked []string
	for {
		q, done := s.Next()
		if done {
			break
		}
		var a Answer
		if q.IsConfirm() {
			a = No
			if c, ok := o.(Confirmer); ok && c.Confirm(q.Confirm) {
				a = Yes
			}
		} else {
			asked = append(asked, q.Entity)
			a = o.Answer(q.Entity)
		}
		if err := s.Answer(a); err != nil {
			t.Fatalf("Answer: %v", err)
		}
	}
	return asked
}

// TestSessionMatchesDiscover is the public parity acceptance criterion: for
// the same collection, options and oracle, NewSession asks exactly the
// question sequence Discover asks and reaches the same result.
func TestSessionMatchesDiscover(t *testing.T) {
	optsets := [][]Option{
		nil,
		{WithStrategy("most-even"), WithBatchSize(3)},
		{WithStrategy("infogain"), WithMaxQuestions(2)},
		{WithBacktracking()},
	}
	for _, opts := range optsets {
		c, err := NewCollection(paperSets())
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range c.Names() {
			oracle, err := c.TargetOracle(name)
			if err != nil {
				t.Fatal(err)
			}
			rec := &recordingOracle{inner: oracle}
			want, err := c.Discover(nil, rec, opts...)
			if err != nil {
				t.Fatalf("Discover(%s): %v", name, err)
			}
			s, err := c.NewSession(nil, opts...)
			if err != nil {
				t.Fatalf("NewSession(%s): %v", name, err)
			}
			asked := driveSession(t, s, oracle)
			if !reflect.DeepEqual(asked, rec.asked) {
				t.Errorf("%s: session asked %v, Discover asked %v", name, asked, rec.asked)
			}
			got, err := s.Result()
			if err != nil {
				t.Fatal(err)
			}
			if got.Target != want.Target || got.Questions != want.Questions ||
				got.Interactions != want.Interactions || got.Backtracks != want.Backtracks ||
				!reflect.DeepEqual(got.Candidates, want.Candidates) {
				t.Errorf("%s: session result %+v, Discover result %+v", name, got, want)
			}
		}
	}
}

func TestTreeSessionMatchesDiscoverWithTree(t *testing.T) {
	c, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.BuildTree(WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range c.Names() {
		oracle, err := c.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.DiscoverWithTree(tr, oracle)
		if err != nil {
			t.Fatal(err)
		}
		s := tr.NewSession()
		driveSession(t, s, oracle)
		got, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got.Target != want.Target || got.Questions != want.Questions {
			t.Errorf("%s: tree session %+v, DiscoverWithTree %+v", name, got, want)
		}
	}
}

func TestNewSessionErrors(t *testing.T) {
	c, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewSession(nil, WithStrategy("nope")); err == nil {
		t.Error("NewSession accepted an unknown strategy")
	}
	if _, err := c.NewSession([]string{"no-such-entity"}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("unknown initial entity: err = %v, want ErrNoCandidates", err)
	}
	// e and g never co-occur: no candidate set, surfaced at creation.
	if _, err := c.NewSession([]string{"e", "g"}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("impossible initial examples: err = %v, want ErrNoCandidates", err)
	}
}

// TestFactoryNormalisesStrategyName pins the fix for the case-mismatch bug:
// the factory cache key and the created strategy must both use the
// normalised name, so spellings share one factory regardless of arrival
// order.
func TestFactoryNormalisesStrategyName(t *testing.T) {
	c, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	for _, spelling := range []string{"KLP", "klp", "Klp"} {
		oracle, err := c.TargetOracle("S2")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Discover(nil, oracle, WithStrategy(spelling)); err != nil {
			t.Fatalf("Discover with strategy %q: %v", spelling, err)
		}
	}
	c.mu.Lock()
	n := len(c.factories)
	c.mu.Unlock()
	if n != 1 {
		t.Errorf("%d factories cached for one strategy config spelled three ways, want 1", n)
	}
	// An invalid name must be rejected whatever entry got cached first.
	if _, err := c.NewSession(nil, WithStrategy("KLPX")); err == nil {
		t.Error("invalid strategy spelling accepted")
	}
}

// lieFirstOracle wraps an oracle and flips its first membership answer —
// the deterministic minimal §6 error scenario. Confirmation stays truthful.
type lieFirstOracle struct {
	inner Oracle
	lied  bool
}

func (l *lieFirstOracle) Answer(entity string) Answer {
	a := l.inner.Answer(entity)
	if !l.lied {
		l.lied = true
		if a == Yes {
			return No
		}
		return Yes
	}
	return a
}

func (l *lieFirstOracle) Confirm(setName string) bool {
	return l.inner.(Confirmer).Confirm(setName)
}

// TestTargetOracleConfirms pins the fix for the silent-confirmation bug:
// Collection.TargetOracle must implement Confirmer and accept only its own
// set, so WithBacktracking can actually detect and recover from a wrong
// answer through the public API.
func TestTargetOracleConfirms(t *testing.T) {
	c, err := NewCollection(paperSets())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := c.TargetOracle("S3")
	if err != nil {
		t.Fatal(err)
	}
	conf, ok := oracle.(Confirmer)
	if !ok {
		t.Fatal("Collection.TargetOracle does not implement Confirmer; §6 error recovery is unreachable")
	}
	if !conf.Confirm("S3") {
		t.Error("TargetOracle rejected its own set")
	}
	if conf.Confirm("S1") {
		t.Error("TargetOracle confirmed a wrong set")
	}

	// End to end: a single wrong answer must be recovered via confirmation
	// + backtracking, for every target.
	for _, name := range c.Names() {
		inner, err := c.TargetOracle(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Discover(nil, &lieFirstOracle{inner: inner}, WithBacktracking())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Target != name {
			t.Errorf("target %s: recovered %q instead", name, res.Target)
		}
		if res.Backtracks == 0 {
			t.Errorf("target %s: confirmation accepted a wrong set without backtracking", name)
		}
	}
}
